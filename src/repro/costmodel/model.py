"""Analytical cost model implementing the paper's Equations 1 and 2.

Equation 2 (per-job):
    ``ET(Job) = T_load + Σ ET(OP_i) + T_sort + T_store``
plus a fixed startup term (the paper folds it into ET; we keep it
explicit because it bounds best-case speedups).

Equation 1 (workflow):
    ``T_total(Job_n) = ET(Job_n) + max_{i∈deps} T_total(Job_i)``

The model consumes the *measured* byte/record counters of the
simulated execution and a ``data_scale`` factor that maps the bytes we
actually pushed through the engine to the instance size the experiment
declares (15 GB / 150 GB / 40 GB), so timing behaves as at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.costmodel.calibration import DEFAULT_PARAMS, CostParams
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.stats import JobStats, TimeBreakdown


@dataclass
class CostModel:
    """Turns measured job counters into simulated cluster seconds."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    params: CostParams = DEFAULT_PARAMS
    #: multiply measured bytes/records by this to reach declared scale
    data_scale: float = 1.0

    def scaled(self, value: float) -> float:
        return value * self.data_scale

    # -- Equation 2 ---------------------------------------------------------------

    def job_time(
        self, stats: JobStats, n_reducers_requested: int = 8
    ) -> TimeBreakdown:
        p = self.params
        cluster = self.cluster

        scaled_input = self.scaled(stats.input_bytes)
        n_map = cluster.n_map_tasks(scaled_input)
        map_parallel = min(n_map, cluster.total_map_slots)
        has_reduce = stats.shuffle_records > 0 or any(
            s.phase == "reduce" for s in stats.stores
        )
        n_reduce = cluster.n_reduce_tasks(n_reducers_requested) if has_reduce else 0
        reduce_parallel = max(1, min(n_reduce, cluster.total_reduce_slots))

        # T_load: aggregate-bandwidth bound — map tasks scan in
        # parallel up to the slot limit, so effective bandwidth is
        # per-task rate x concurrent tasks.
        t_load = scaled_input / (p.read_bw_per_task * map_parallel)

        # Σ ET(OP_i): per-record pipeline cost across the parallel tasks.
        scaled_records = self.scaled(stats.op_records)
        t_ops = scaled_records * p.cpu_per_record_s / max(1, map_parallel)

        # T_sort: shuffle + merge cost, parallel across reducers.
        scaled_shuffle = self.scaled(stats.shuffle_bytes)
        t_sort = (
            scaled_shuffle / (p.shuffle_bw_per_task * reduce_parallel)
            if scaled_shuffle
            else 0.0
        )

        # T_store: primary outputs written by the phase's tasks with
        # replication; injected stores add their fixed cost.
        t_store = 0.0
        t_side = 0.0
        for store in stats.stores:
            writers = n_reduce if store.phase == "reduce" and n_reduce else n_map
            writers = max(1, min(writers, cluster.total_map_slots))
            t_bytes = (
                self.scaled(store.bytes)
                * cluster.replication
                / (p.write_bw_per_task * writers)
            )
            if store.side:
                t_side += p.side_store_fixed_s + t_bytes
            else:
                t_store += t_bytes

        return TimeBreakdown(
            t_startup=p.job_startup_s,
            t_load=t_load,
            t_ops=t_ops,
            t_sort=t_sort,
            t_store=t_store,
            t_side_stores=t_side,
            n_map_tasks=n_map,
            n_reduce_tasks=n_reduce,
        )

    # -- Equation 1 -----------------------------------------------------------------

    def workflow_time(
        self,
        job_times: Mapping[str, float],
        deps: Mapping[str, Iterable[str]],
    ) -> float:
        """Critical-path total time of a workflow (Equation 1).

        ``job_times`` maps job id -> ET(job); ``deps`` maps job id ->
        ids of jobs it depends on.  Jobs absent from ``job_times``
        (e.g. eliminated by ReStore) contribute zero.
        """
        memo: Dict[str, float] = {}

        def total(job_id: str) -> float:
            if job_id in memo:
                return memo[job_id]
            et = job_times.get(job_id, 0.0)
            upstream = [
                total(d) for d in deps.get(job_id, ()) if d in job_times or d in deps
            ]
            value = et + (max(upstream) if upstream else 0.0)
            memo[job_id] = value
            return value

        if not job_times:
            return 0.0
        return max(total(job_id) for job_id in job_times)


def estimate_standalone_time(
    model: CostModel,
    input_bytes: int,
    output_bytes: int,
    records: int = 0,
) -> float:
    """Rough ET for a hypothetical job (used by repository Rule 2).

    Approximates what executing a stored sub-job from scratch would
    cost: load its inputs, run its operators, store its output.
    """
    p = model.params
    cluster = model.cluster
    scaled_in = model.scaled(input_bytes)
    scaled_out = model.scaled(output_bytes)
    n_map = cluster.n_map_tasks(scaled_in)
    map_parallel = max(1, min(n_map, cluster.total_map_slots))
    t_load = scaled_in / (p.read_bw_per_task * map_parallel)
    t_ops = model.scaled(records) * p.cpu_per_record_s / max(
        1, min(n_map, cluster.total_map_slots)
    )
    writers = max(1, min(n_map, cluster.total_map_slots))
    t_store = scaled_out * cluster.replication / (p.write_bw_per_task * writers)
    return p.job_startup_s + t_load + t_ops + t_store
