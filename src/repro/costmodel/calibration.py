"""Calibrated cost-model constants.

The paper reports wall-clock minutes on a 15-node cluster; we cannot
rerun that hardware, so the model's constants are back-derived from
the paper's own measurements (§7):

* PigMix L2 at 150 GB with no reuse runs ≈ 13 min (Figure 10).  The
  job is I/O bound, so effective aggregate scan+process bandwidth
  ≈ 150.6 GB / 780 s ≈ 190 MB/s across the cluster — i.e. ≈ 14 MB/s
  per worker node once CPU, deserialization and disk contention are
  folded in.  We split that into a read term and a per-record CPU
  term.

* Figure 11 shows store-injection overhead is *larger* at 15 GB (2.4×)
  than at 150 GB (1.6×).  A pure bandwidth model cannot produce that
  (stored bytes shrink with the data), so each injected Store must
  carry a sizeable fixed cost — task setup, commit, replication
  pipeline, reduced pipeline parallelism — plus a slow per-byte cost:
  materialized bytes are written by few tasks with 3-way replication.
  With a ≈ 60 s fixed cost per injected store and ≈ 10 MB/s effective
  materialization bandwidth, L2's numbers reproduce:
  15 GB: (109 s + 2·60 s + 0.31 GB/10 MB/s) / 109 s ≈ 2.4;
  150 GB: (820 s + 2·60 s + 3.1 GB/10 MB/s) / 820 s ≈ 1.5.

* Hadoop-era job startup (JVM spawn, scheduling) ≈ 25–30 s, which is
  what bounds the best-case speedup of rewritten jobs (Figure 9's
  9.8× average rather than 100×).
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1024.0 * 1024.0
GB = 1024.0 * MB


@dataclass(frozen=True)
class CostParams:
    """Tunable constants of the analytical model (all rates per task).

    Per-task scan bandwidth is set so that a full cluster (56 map
    slots) reaches the ~190 MB/s aggregate effective rate implied by
    the paper's L2 measurement: 56 × 3.5 MB/s ≈ 196 MB/s.
    """

    #: fixed per-job cost: scheduling + JVM startup (s)
    job_startup_s: float = 25.0
    #: effective HDFS scan+deserialize bandwidth per map task (bytes/s)
    read_bw_per_task: float = 3.5 * MB
    #: per-record pipeline CPU cost (s per operator-record)
    cpu_per_record_s: float = 0.2e-6
    #: sort+shuffle bandwidth per reduce task (bytes/s)
    shuffle_bw_per_task: float = 12.0 * MB
    #: replicated write bandwidth per writing task (bytes/s)
    write_bw_per_task: float = 3.0 * MB
    #: extra fixed cost for each ReStore-injected store (s)
    side_store_fixed_s: float = 60.0

    def __post_init__(self):
        for name in (
            "job_startup_s",
            "read_bw_per_task",
            "shuffle_bw_per_task",
            "write_bw_per_task",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


DEFAULT_PARAMS = CostParams()
