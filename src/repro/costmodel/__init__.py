"""Analytical cost model (paper Equations 1 and 2) + calibration."""

from repro.costmodel.calibration import DEFAULT_PARAMS, GB, MB, CostParams
from repro.costmodel.model import CostModel, estimate_standalone_time

__all__ = [
    "CostModel",
    "CostParams",
    "DEFAULT_PARAMS",
    "GB",
    "MB",
    "estimate_standalone_time",
]
