"""ReStore: reusing results of MapReduce jobs in Pig — reproduction.

A full-system reproduction of Elghandour & Aboulnaga, *ReStore:
Reusing Results of MapReduce Jobs*, PVLDB 5(6) / SIGMOD 2012.

Quick start::

    from repro import DistributedFileSystem, PigServer, ReStoreManager

    dfs = DistributedFileSystem()
    dfs.write_file("data/users", "alice\\t1\\nbob\\t2\\n")
    restore = ReStoreManager(dfs)
    server = PigServer(dfs, restore=restore)
    result = server.run(\"\"\"
        A = load 'data/users' as (name:chararray, uid:int);
        B = filter A by uid > 1;
        store B into 'out';
    \"\"\")
    print(result.outputs["out"])

See README.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured reproduction results.
"""

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.repository import Repository, RepositoryEntry
from repro.costmodel.model import CostModel
from repro.dfs.filesystem import DistributedFileSystem
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.runner import HadoopSimulator
from repro.pig.engine import PigRunResult, PigServer

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "CostModel",
    "DistributedFileSystem",
    "HadoopSimulator",
    "PigRunResult",
    "PigServer",
    "Repository",
    "RepositoryEntry",
    "ReStoreConfig",
    "ReStoreManager",
    "__version__",
]
