"""ReStore: reusing results of MapReduce jobs in Pig — reproduction.

A full-system reproduction of Elghandour & Aboulnaga, *ReStore:
Reusing Results of MapReduce Jobs*, PVLDB 5(6) / SIGMOD 2012.

Quick start::

    from repro import ReStoreSession

    with ReStoreSession() as session:
        session.write_file("data/users", "alice\\t1\\nbob\\t2\\n")
        result = session.run(
            "A = load 'data/users' as (name, uid:int);"
            "B = filter A by uid > 1; store B into 'out';"
        )
        print(result.outputs["out"])

The session wires the whole stack (simulated DFS, cluster, one shared
cost model, repository, ReStore manager, Pig server) and publishes
every reuse decision as typed events on ``session.events``.  The
pre-session entry points (``PigServer``, ``ReStoreManager``) remain
available for piecewise wiring.

See README.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured reproduction results.
"""

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.repository import Repository, RepositoryEntry
from repro.costmodel.model import CostModel
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import (
    EntryEvicted,
    EventBus,
    JobEliminated,
    MatchScanned,
    ReStoreEvent,
    RewriteApplied,
    SubJobDiscarded,
    SubJobStored,
)
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.runner import HadoopSimulator
from repro.pig.engine import PigRunResult, PigServer
from repro.service import JobService, ServiceSession, WorkloadDriver
from repro.session import ReStoreSession, SessionBuilder

__version__ = "1.1.0"

__all__ = [
    "ClusterConfig",
    "CostModel",
    "DistributedFileSystem",
    "EntryEvicted",
    "EventBus",
    "HadoopSimulator",
    "JobEliminated",
    "JobService",
    "MatchScanned",
    "PigRunResult",
    "PigServer",
    "Repository",
    "RepositoryEntry",
    "ReStoreConfig",
    "ReStoreEvent",
    "ReStoreManager",
    "ReStoreSession",
    "RewriteApplied",
    "ServiceSession",
    "SessionBuilder",
    "SubJobDiscarded",
    "WorkloadDriver",
    "SubJobStored",
    "__version__",
]
