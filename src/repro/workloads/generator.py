"""Workload-stream generation over the PigMix schema.

The paper motivates ReStore with production workloads where "many data
analysis queries are executed" over shared datasets and prefixes repeat
across queries (§1, the Facebook seven-day retention anecdote).  This
module synthesizes such streams: a seeded sequence of queries drawn
from parameterized templates whose early stages (load + filter +
project) overlap across analysts while the drill-downs differ.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.pigmix.datagen import PigMixDataGenerator, PigMixDataset

PV = PigMixDataGenerator.PAGE_VIEWS_SCHEMA


@dataclass(frozen=True)
class WorkloadQuery:
    """One submitted query in the stream."""

    name: str
    source: str
    template: str  # which template produced it (for hit-rate analysis)


@dataclass
class WorkloadConfig:
    n_queries: int = 12
    seed: int = 13
    #: probability that a query repeats the previous parameter choice
    #: (higher = more overlap = more reuse opportunities)
    repeat_probability: float = 0.6
    #: distinct parameter values per template (lower = more overlap)
    parameter_space: int = 3


class WorkloadGenerator:
    """Generates a deterministic stream of analyst-style queries."""

    def __init__(self, dataset: PigMixDataset, config: WorkloadConfig | None = None):
        self.dataset = dataset
        self.config = config or WorkloadConfig()

    # -- templates -----------------------------------------------------------------

    def _shared_prefix(self, action: int) -> str:
        pv = self.dataset.paths["page_views"]
        return f"""
A = load '{pv}' as ({PV});
B = filter A by action == {action};
C = foreach B generate user, est_revenue, timestamp;
"""

    def _revenue_by_user(self, action: int, out: str) -> str:
        return self._shared_prefix(action) + f"""
D = group C by user;
E = foreach D generate group, SUM(C.est_revenue);
store E into '{out}';
"""

    def _views_by_user(self, action: int, out: str) -> str:
        return self._shared_prefix(action) + f"""
D = group C by user;
E = foreach D generate group, COUNT(C.timestamp);
store E into '{out}';
"""

    def _total_revenue(self, action: int, out: str) -> str:
        return self._shared_prefix(action) + f"""
D = group C all;
E = foreach D generate SUM(C.est_revenue), COUNT(C.user);
store E into '{out}';
"""

    def _distinct_users(self, action: int, out: str) -> str:
        return self._shared_prefix(action) + f"""
D = foreach C generate user;
E = distinct D;
store E into '{out}';
"""

    TEMPLATES = (
        "revenue_by_user",
        "views_by_user",
        "total_revenue",
        "distinct_users",
    )

    # -- stream ---------------------------------------------------------------------

    def generate(self) -> List[WorkloadQuery]:
        rng = random.Random(self.config.seed)
        builders = {
            "revenue_by_user": self._revenue_by_user,
            "views_by_user": self._views_by_user,
            "total_revenue": self._total_revenue,
            "distinct_users": self._distinct_users,
        }
        queries: List[WorkloadQuery] = []
        last_action = 1
        for index in range(self.config.n_queries):
            template = rng.choice(self.TEMPLATES)
            if rng.random() < self.config.repeat_probability:
                action = last_action
            else:
                action = rng.randint(1, self.config.parameter_space)
            last_action = action
            name = f"q{index:03d}_{template}_a{action}"
            source = builders[template](action, f"workload_out/{name}")
            queries.append(WorkloadQuery(name, source, template))
        return queries
