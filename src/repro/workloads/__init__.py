"""Analyst-workload stream generation (the paper's §1 motivation)."""

from repro.workloads.generator import (
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadQuery,
)

__all__ = ["WorkloadConfig", "WorkloadGenerator", "WorkloadQuery"]
