"""Repository-scale matching benchmark (implementation perf, not a
paper figure): fingerprint-indexed candidate pruning vs the historical
full scan, with identical rewrite decisions enforced.

Run explicitly (benchmarks are not collected by the tier-1 suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_repo_scale.py -q
"""

import json

from repro.bench.repo_scale import check_gates, run_repo_scale_benchmark

from benchmarks.conftest import RESULTS_DIR


def test_repo_scale_indexed_vs_full(benchmark):
    payload = benchmark.pedantic(
        lambda: run_repo_scale_benchmark(n_probes=20),
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "repo_scale.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert check_gates(payload) == []
    top = payload["scales"][-1]
    assert top["n_entries"] == 1000
    assert top["decisions_identical"]
    assert top["traversal_reduction"] >= 10.0
