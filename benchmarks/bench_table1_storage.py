"""Table 1 benchmark — bytes stored by each heuristic per query.

Paper claim: HC <= HA << NH; HA close to HC except expensive-operator
queries (L3, L5, L6, L7).
"""

from repro.experiments import table1

from benchmarks.conftest import BENCH_PIGMIX


def test_table1_stored_bytes(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: table1.run(pigmix_config=BENCH_PIGMIX), rounds=1, iterations=1
    )
    record_result(result, "table1")
    for row in result.rows:
        assert row["HC_GB"] <= row["HA_GB"] + 1e-9, row
        assert row["HA_GB"] <= row["NH_GB"] + 1e-9, row
