"""Table 2 benchmark — synthetic field cardinalities / selectivities."""

import pytest

from repro.experiments import table2

from benchmarks.conftest import BENCH_SYNTH


def test_table2_selectivities(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: table2.run(BENCH_SYNTH), rounds=1, iterations=1
    )
    record_result(result, "table2")
    for row in result.rows:
        assert row["measured_selected_pct"] == pytest.approx(
            row["paper_selected_pct"], rel=0.5, abs=1.0
        ), row
