"""Figure 11 benchmark — injection overhead at 15 GB vs 150 GB.

Paper claim: overhead is HIGHER at the smaller scale (2.4 vs 1.6).
"""

from repro.experiments import fig11

from benchmarks.conftest import BENCH_PIGMIX


def test_fig11_overhead_by_scale(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig11.run(pigmix_config=BENCH_PIGMIX), rounds=1, iterations=1
    )
    record_result(result, "fig11")
    avg = [r for r in result.rows if r["query"] == "AVG"][0]
    assert avg["overhead_15GB"] > avg["overhead_150GB"]
