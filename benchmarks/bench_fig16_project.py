"""Figure 16 benchmark — overhead/speedup vs % of projected data (QP)."""

from repro.experiments import fig16

from benchmarks.conftest import BENCH_SYNTH


def test_fig16_projection_sweep(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig16.run(BENCH_SYNTH), rounds=1, iterations=1
    )
    record_result(result, "fig16")
    overheads = [r["overhead"] for r in result.rows]
    speedups = [r["speedup"] for r in result.rows]
    assert overheads[-1] > overheads[0]
    assert speedups[0] > speedups[-1]
