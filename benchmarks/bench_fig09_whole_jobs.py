"""Figure 9 benchmark — whole-job reuse on L3/L11 + variants (150 GB).

Paper claim: average speedup 9.8x, zero injection overhead.
"""

from repro.experiments import fig09

from benchmarks.conftest import BENCH_PIGMIX


def test_fig09_whole_job_reuse(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig09.run(pigmix_config=BENCH_PIGMIX), rounds=1, iterations=1
    )
    record_result(result, "fig09")
    avg = [r for r in result.rows if r["query"] == "AVG"][0]
    assert avg["speedup"] > 3.0  # paper: 9.8
