"""Benchmark configuration: instance sizes + result persistence.

Each benchmark regenerates one paper table/figure via the harness in
``repro.experiments`` and prints the paper-vs-measured table.  Tables
are also written to ``benchmarks/results/`` so EXPERIMENTS.md can be
refreshed from a benchmark run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import ExperimentResult
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.synthetic import SyntheticConfig

#: generated instance used by every PigMix-based benchmark; large
#: enough for stable shapes, small enough to keep the suite fast
BENCH_PIGMIX = PigMixConfig(
    n_page_views=400, n_users=40, n_power_users=8, n_widerow=120, seed=42
)

BENCH_SYNTH = SyntheticConfig(n_rows=2400, seed=7)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Print an ExperimentResult and persist it under results/."""

    def _record(result: ExperimentResult, name: str) -> ExperimentResult:
        table = result.format_table()
        print("\n" + table)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
        return result

    return _record
