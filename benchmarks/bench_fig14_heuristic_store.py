"""Figure 14 benchmark — execution time with injected stores by heuristic.

Paper claim: NH always worst; HA close to HC except group-heavy L6.
"""

from repro.experiments import fig14

from benchmarks.conftest import BENCH_PIGMIX


def test_fig14_store_time_by_heuristic(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig14.run(pigmix_config=BENCH_PIGMIX), rounds=1, iterations=1
    )
    record_result(result, "fig14")
    for row in result.rows:
        assert row["store_NH_min"] >= row["store_HA_min"] - 1e-9, row
        assert row["store_HC_min"] <= row["store_HA_min"] + 1e-9, row
    l6 = [r for r in result.rows if r["query"] == "L6"][0]
    assert l6["store_HA_min"] > l6["store_HC_min"] * 1.1
