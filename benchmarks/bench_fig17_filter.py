"""Figure 17 benchmark — overhead/speedup vs % of filtered data (QF)."""

from repro.experiments import fig17

from benchmarks.conftest import BENCH_SYNTH


def test_fig17_filter_sweep(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig17.run(BENCH_SYNTH), rounds=1, iterations=1
    )
    record_result(result, "fig17")
    assert result.rows[0]["speedup"] > result.rows[-1]["speedup"]
    assert result.rows[-1]["overhead"] > result.rows[0]["overhead"]
