"""Ablation benchmarks for ReStore's design choices (DESIGN.md §4).

Not paper figures — these probe *why* the design is the way it is:
repository ordering (§3), the §5 keep rules, the logical optimizer as
a plan canonicalizer, and cumulative benefit over an analyst workload
stream (§1 motivation).
"""

from repro.experiments.ablations import (
    run_optimizer_ablation,
    run_ordering_ablation,
    run_selector_ablation,
    run_workload_stream,
)
from repro.workloads.generator import WorkloadConfig

from benchmarks.conftest import BENCH_PIGMIX


def test_ablation_repository_ordering(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ordering_ablation(pigmix_config=BENCH_PIGMIX),
        rounds=1,
        iterations=1,
    )
    record_result(result, "ablation_ordering")
    for row in result.rows:
        assert row["penalty"] > 1.5, row  # ordering matters


def test_ablation_selector_rules(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_selector_ablation(pigmix_config=BENCH_PIGMIX),
        rounds=1,
        iterations=1,
    )
    record_result(result, "ablation_selector")
    wasteful = [r for r in result.rows if r["query"] == "wasteful"][0]
    assert wasteful["stored_MB_rules"] < wasteful["stored_MB_keep_all"] / 100


def test_ablation_optimizer_canonicalization(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_optimizer_ablation(pigmix_config=BENCH_PIGMIX),
        rounds=1,
        iterations=1,
    )
    record_result(result, "ablation_optimizer")
    optimized = [r for r in result.rows if r["mode"] == "optimized"][0]
    unoptimized = [r for r in result.rows if r["mode"] == "unoptimized"][0]
    assert optimized["rewrites_on_spelling_b"] > 0
    assert optimized["spelling_b_min"] < unoptimized["spelling_b_min"]


def test_workload_stream_crossover(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_workload_stream(
            pigmix_config=BENCH_PIGMIX,
            workload_config=WorkloadConfig(n_queries=10),
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result, "ablation_workload_stream")
    total = [r for r in result.rows if r["query"] == "TOTAL"][0]
    assert total["cum_restore_min"] < total["cum_plain_min"]
