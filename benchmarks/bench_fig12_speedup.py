"""Figure 12 benchmark — reuse speedup at 15 GB vs 150 GB.

Paper claim: speedup is HIGHER at the larger scale (24.4 vs 3.0).
"""

from repro.experiments import fig12

from benchmarks.conftest import BENCH_PIGMIX


def test_fig12_speedup_by_scale(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig12.run(pigmix_config=BENCH_PIGMIX), rounds=1, iterations=1
    )
    record_result(result, "fig12")
    avg = [r for r in result.rows if r["query"] == "AVG"][0]
    assert avg["speedup_150GB"] > avg["speedup_15GB"]
