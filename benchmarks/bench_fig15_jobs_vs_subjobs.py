"""Figure 15 benchmark — whole-job vs sub-job (HC/HA) reuse.

Paper claim: every reuse mode helps; whole-job and HA nearly tie.
"""

from repro.experiments import fig15

from benchmarks.conftest import BENCH_PIGMIX


def test_fig15_whole_vs_subjobs(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig15.run(pigmix_config=BENCH_PIGMIX), rounds=1, iterations=1
    )
    record_result(result, "fig15")
    for row in result.rows:
        for column in ("subjob_HC_min", "subjob_HA_min", "whole_job_min"):
            assert row[column] < row["no_reuse_min"], (row, column)
