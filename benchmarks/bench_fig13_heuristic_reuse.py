"""Figure 13 benchmark — reuse time by heuristic (HC / HA / NH).

Paper claim: HA matches NH; HC gains less than HA.
"""

from repro.experiments import fig13

from benchmarks.conftest import BENCH_PIGMIX


def test_fig13_reuse_by_heuristic(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig13.run(pigmix_config=BENCH_PIGMIX), rounds=1, iterations=1
    )
    record_result(result, "fig13")
    for row in result.rows:
        assert row["reuse_HA_min"] <= row["reuse_NH_min"] * 1.25, row
        assert row["reuse_HA_min"] < row["no_reuse_min"], row
