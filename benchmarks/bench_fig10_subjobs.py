"""Figure 10 benchmark — sub-job reuse under the Aggressive heuristic.

Paper claim: average speedup 24.4, average overhead 1.6 at 150 GB.
"""

from repro.experiments import fig10

from benchmarks.conftest import BENCH_PIGMIX


def test_fig10_subjob_reuse(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig10.run(pigmix_config=BENCH_PIGMIX), rounds=1, iterations=1
    )
    record_result(result, "fig10")
    avg = [r for r in result.rows if r["query"] == "AVG"][0]
    assert avg["speedup"] > 3.0      # paper: 24.4
    assert 1.0 < avg["overhead"] < 3.0  # paper: 1.6
