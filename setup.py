"""Legacy setup shim.

The offline build environment has setuptools but not the ``wheel``
package, so PEP 660 editable installs (which build an editable wheel)
fail.  This shim lets ``pip install -e . --no-use-pep517`` — and plain
``python setup.py develop`` — work everywhere.
"""

from setuptools import setup

setup()
