#!/usr/bin/env python
"""Run the implementation-scale benchmarks and emit BENCH_*.json.

Usage::

    PYTHONPATH=src python scripts/run_benchmarks.py [--quick]
        [--out BENCH_repo_scale.json] [--probes 20] [--seed 13]
        [--scales 10,100,1000] [--no-gate]

This is the repo's perf trajectory: ``BENCH_repo_scale.json`` records
match latency, candidates examined, and rewrites found for repository
sizes N ∈ {10, 100, 1000} in both indexed and full-scan modes.  The
process exits non-zero when a regression gate trips (CI's
``bench-smoke`` job relies on this):

* indexed and full-scan rewrite decisions must be byte-identical;
* indexed matching must never examine more candidates than the
  unindexed entry count;
* at N≥1000 (full runs), indexed matching must run ≥10x fewer
  pairwise traversals than the full scan.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.repo_scale import (
    DEFAULT_SCALES,
    QUICK_SCALES,
    check_gates,
    run_repo_scale_benchmark,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="ReStore implementation benchmarks")
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: scales {QUICK_SCALES}, fewer probes",
    )
    parser.add_argument(
        "--scales",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=None,
        help=f"comma-separated repository sizes (default {DEFAULT_SCALES})",
    )
    parser.add_argument("--probes", type=int, default=20)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_repo_scale.json",
        help="where to write the JSON trajectory",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="record results without failing on gate regressions",
    )
    args = parser.parse_args(argv)

    payload = run_repo_scale_benchmark(
        scales=args.scales,
        n_probes=args.probes,
        seed=args.seed,
        quick=args.quick,
    )
    failures = check_gates(payload)
    payload["gates"] = {
        "passed": not failures,
        "failures": failures,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    for scale in payload["scales"]:
        indexed = scale["modes"]["indexed"]
        full = scale["modes"]["full_scan"]
        print(
            f"  N={scale['n_entries']:>5}: "
            f"{indexed['traversals']:>6} vs {full['traversals']:>6} "
            f"traversals ({scale['traversal_reduction']}x), "
            f"{indexed['mean_match_ms']:.3f}ms vs "
            f"{full['mean_match_ms']:.3f}ms per match, "
            f"decisions identical={scale['decisions_identical']}"
        )
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        if not args.no_gate:
            return 1
    else:
        print("all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
