#!/usr/bin/env python
"""Run the implementation-scale benchmarks and emit BENCH_*.json.

Usage::

    PYTHONPATH=src python scripts/run_benchmarks.py [--quick]
        [--out BENCH_repo_scale.json] [--probes 20] [--seed 13]
        [--scales 10,100,1000] [--service-scales 1000,10000]
        [--service-workers 1,4,8] [--service-jobs 60]
        [--exec-scales 6000,20000] [--persistence-entries 10000]
        [--no-gate]

This is the repo's perf trajectory: ``BENCH_repo_scale.json`` records
match latency, candidates examined, and rewrites found for repository
sizes N ∈ {10, 100, 1000} in both indexed and full-scan modes, the
shared-service throughput (jobs/sec at 1/4/8 workers over one sharded
repository), the ``exec_sim`` data-plane trajectory (end-to-end
workflow wall time and rows/sec across the batched / per-row fast /
legacy planes, over PigMix-style chains at two table sizes), and the
``subjob_enum`` enumeration trajectory (wall time and candidates/sec
at N ∈ {100, 1000} heuristic anchors), the ``repo_persistence``
durability trajectory (snapshot cold-start vs rebuild-by-re-
registration at a 10k-entry repository, plus torn-tail journal
recovery), and the ``incremental`` delta-recomputation trajectory
(delta refresh over an appended tail vs a full no-reuse rerun).  The
process exits non-zero when a regression gate trips (CI's
``bench-smoke`` job relies on this):

* indexed and full-scan rewrite decisions must be byte-identical;
* indexed matching must never examine more candidates than the
  unindexed entry count;
* at N≥1000 (full runs), indexed matching must run ≥10x fewer
  pairwise traversals than the full scan;
* the 1-worker service run must reproduce the serial decision log
  byte for byte, and every pool size must clear 1 job/sec per worker;
* the batched data plane must beat the legacy plane ≥3x end to end at
  every scale and the per-row fast plane ≥1.5x at the largest scale,
  with byte-identical DFS contents, counters, and decisions across
  all three planes and zero copy-store re-serialization;
* sub-job enumeration must inject every expected candidate;
* restoring from a snapshot must be ≥10x faster than rebuilding by
  re-registration, with byte-identical rewrite decisions, zero
  subsumption traversals spent on the restore, and every intact
  journal record recovered past a torn tail;
* the delta probe over an appended input must be ≥3x faster than the
  full-rerun oracle with byte-identical outputs, and a shuffle probe
  must fall back (typed ``DeltaFallback``) yet recompute correctly.

``python -m repro bench`` accepts the same flags.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import add_benchmark_arguments, run_from_args


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="ReStore implementation benchmarks")
    add_benchmark_arguments(parser)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_repo_scale.json",
        help="where to write the JSON trajectory",
    )
    args = parser.parse_args(argv)
    return run_from_args(args, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
