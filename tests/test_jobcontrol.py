"""Tests for the batched JobControlCompiler (§6.2 semantics)."""

from repro.core.manager import ReStoreManager
from repro.mapreduce.runner import HadoopSimulator
from repro.pig.engine import PigServer
from repro.pig.jobcontrol import JobControlCompiler

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"

L11ISH = f"""
A = load 'data/page_views' as ({PV});
B = foreach A generate user;
C = distinct B;
alpha = load 'data/users' as ({USERS});
beta = foreach alpha generate name;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into 'out';
"""


def build(small_data, restore=None):
    server = PigServer(small_data, restore=restore)
    runner = HadoopSimulator(small_data, server.cluster, server.cost_model)
    return server, JobControlCompiler(runner, restore)


class TestBatching:
    def test_independent_jobs_in_one_iteration(self, small_data):
        server, jcc = build(small_data)
        workflow = server.compile(L11ISH)
        stats, iterations = jcc.run(workflow)
        # iteration 0: the two distinct jobs in parallel; iteration 1:
        # the union+distinct job that depends on both
        assert len(iterations) == 2
        assert len(iterations[0].submitted) == 2
        assert len(iterations[1].submitted) == 1

    def test_all_jobs_finish(self, small_data):
        server, jcc = build(small_data)
        workflow = server.compile(L11ISH)
        stats, _ = jcc.run(workflow)
        assert len(stats.job_stats) == 3

    def test_results_match_runner(self, small_data):
        """The batched loop computes the same outputs and workflow time
        as the plain dependency-ordered runner."""
        server, jcc = build(small_data)
        workflow_a = server.compile(L11ISH)
        stats_a, _ = jcc.run(workflow_a)

        plain = PigServer(small_data)
        result_b = plain.run(L11ISH.replace("'out'", "'out_b'"))
        rows_a = sorted(small_data.read_lines("out"))
        rows_b = sorted(small_data.read_lines("out_b"))
        assert rows_a == rows_b
        assert stats_a.sim_seconds > 0

    def test_equation1_uses_batch_parallelism(self, small_data):
        """Total time < sum of job times when jobs overlap."""
        server, jcc = build(small_data)
        workflow = server.compile(L11ISH)
        stats, _ = jcc.run(workflow)
        total_sequential = sum(
            s.sim_seconds for s in stats.job_stats.values()
        )
        assert stats.sim_seconds < total_sequential


class TestWithReStore:
    def test_elimination_recorded_per_iteration(self, small_data):
        restore = ReStoreManager(small_data)
        server, jcc = build(small_data, restore)
        stats1, _ = jcc.run(server.compile(L11ISH))
        stats2, iterations2 = jcc.run(
            server.compile(L11ISH.replace("'out'", "'out2'"))
        )
        eliminated = [
            job_id for it in iterations2 for job_id in it.eliminated
        ]
        assert len(eliminated) >= 2  # both distinct jobs answered
        assert stats2.sim_seconds < stats1.sim_seconds

    def test_outputs_correct_after_elimination(self, small_data):
        restore = ReStoreManager(small_data)
        server, jcc = build(small_data, restore)
        jcc.run(server.compile(L11ISH))
        jcc.run(server.compile(L11ISH.replace("'out'", "'out2'")))
        assert sorted(small_data.read_lines("out")) == sorted(
            small_data.read_lines("out2")
        )
