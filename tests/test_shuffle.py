"""Unit tests for the sort/shuffle machinery."""

from repro.mapreduce.shuffle import ShuffleBuffer, sort_key, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_tuple_keys(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_non_negative(self):
        for key in ["x", 0, -5, ("a",), None]:
            assert stable_hash(key) >= 0


class TestSortKey:
    def test_numbers_sort_together(self):
        keys = [3, 1.5, 2]
        assert sorted(keys, key=sort_key) == [1.5, 2, 3]

    def test_none_sorts_first(self):
        keys = ["b", None, "a"]
        assert sorted(keys, key=sort_key)[0] is None

    def test_mixed_types_total_order(self):
        keys = ["z", 5, None, ("a", 1), 2.5]
        ordered = sorted(keys, key=sort_key)
        assert ordered[0] is None
        # does not raise, and is stable
        assert sorted(ordered, key=sort_key) == ordered

    def test_tuples_elementwise(self):
        keys = [("b", 1), ("a", 2), ("a", 1)]
        assert sorted(keys, key=sort_key) == [("a", 1), ("a", 2), ("b", 1)]


class TestShuffleBuffer:
    def test_grouping_by_key(self):
        buf = ShuffleBuffer(n_partitions=4)
        buf.add("a", 0, ("a", 1))
        buf.add("b", 0, ("b", 2))
        buf.add("a", 0, ("a", 3))
        groups = dict(
            (key, bags) for key, bags in buf.all_groups()
        )
        assert set(groups) == {"a", "b"}
        assert groups["a"][0] == [("a", 1), ("a", 3)]

    def test_branch_separation(self):
        buf = ShuffleBuffer(n_partitions=2)
        buf.add("k", 0, ("left",))
        buf.add("k", 1, ("right",))
        ((key, bags),) = list(buf.all_groups())
        assert key == "k"
        assert bags[0] == [("left",)]
        assert bags[1] == [("right",)]

    def test_keys_sorted_within_partition(self):
        buf = ShuffleBuffer(n_partitions=1)
        for key in ["c", "a", "b"]:
            buf.add(key, 0, (key,))
        keys = [key for key, _ in buf.grouped(0)]
        assert keys == ["a", "b", "c"]

    def test_counters(self):
        buf = ShuffleBuffer(n_partitions=2)
        buf.add("a", 0, ("a", 1))
        buf.add("b", 0, ("b", 2))
        assert buf.records == 2
        assert buf.bytes > 0

    def test_same_key_same_partition(self):
        buf = ShuffleBuffer(n_partitions=8)
        buf.add("k", 0, ("x",))
        buf.add("k", 1, ("y",))
        assert len(buf.used_partitions()) == 1

    def test_invalid_partition_count(self):
        import pytest

        with pytest.raises(ValueError):
            ShuffleBuffer(0)

    def test_all_groups_covers_all_partitions(self):
        buf = ShuffleBuffer(n_partitions=4)
        keys = [f"key{i}" for i in range(20)]
        for key in keys:
            buf.add(key, 0, (key,))
        seen = [key for key, _ in buf.all_groups()]
        assert sorted(seen) == sorted(keys)
