"""Unit tests for the sort/shuffle machinery."""

from repro.mapreduce.shuffle import ShuffleBuffer, sort_key, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_tuple_keys(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_non_negative(self):
        for key in ["x", 0, -5, ("a",), None]:
            assert stable_hash(key) >= 0


class TestSortKey:
    def test_numbers_sort_together(self):
        keys = [3, 1.5, 2]
        assert sorted(keys, key=sort_key) == [1.5, 2, 3]

    def test_none_sorts_first(self):
        keys = ["b", None, "a"]
        assert sorted(keys, key=sort_key)[0] is None

    def test_mixed_types_total_order(self):
        keys = ["z", 5, None, ("a", 1), 2.5]
        ordered = sorted(keys, key=sort_key)
        assert ordered[0] is None
        # does not raise, and is stable
        assert sorted(ordered, key=sort_key) == ordered

    def test_tuples_elementwise(self):
        keys = [("b", 1), ("a", 2), ("a", 1)]
        assert sorted(keys, key=sort_key) == [("a", 1), ("a", 2), ("b", 1)]


class TestShuffleBuffer:
    def test_grouping_by_key(self):
        buf = ShuffleBuffer(n_partitions=4)
        buf.add("a", 0, ("a", 1))
        buf.add("b", 0, ("b", 2))
        buf.add("a", 0, ("a", 3))
        groups = dict(
            (key, bags) for key, bags in buf.all_groups()
        )
        assert set(groups) == {"a", "b"}
        assert groups["a"][0] == [("a", 1), ("a", 3)]

    def test_branch_separation(self):
        buf = ShuffleBuffer(n_partitions=2)
        buf.add("k", 0, ("left",))
        buf.add("k", 1, ("right",))
        ((key, bags),) = list(buf.all_groups())
        assert key == "k"
        assert bags[0] == [("left",)]
        assert bags[1] == [("right",)]

    def test_keys_sorted_within_partition(self):
        buf = ShuffleBuffer(n_partitions=1)
        for key in ["c", "a", "b"]:
            buf.add(key, 0, (key,))
        keys = [key for key, _ in buf.grouped(0)]
        assert keys == ["a", "b", "c"]

    def test_counters(self):
        buf = ShuffleBuffer(n_partitions=2)
        buf.add("a", 0, ("a", 1))
        buf.add("b", 0, ("b", 2))
        assert buf.records == 2
        assert buf.bytes > 0

    def test_same_key_same_partition(self):
        buf = ShuffleBuffer(n_partitions=8)
        buf.add("k", 0, ("x",))
        buf.add("k", 1, ("y",))
        assert len(buf.used_partitions()) == 1

    def test_invalid_partition_count(self):
        import pytest

        with pytest.raises(ValueError):
            ShuffleBuffer(0)

    def test_all_groups_covers_all_partitions(self):
        buf = ShuffleBuffer(n_partitions=4)
        keys = [f"key{i}" for i in range(20)]
        for key in keys:
            buf.add(key, 0, (key,))
        seen = [key for key, _ in buf.all_groups()]
        assert sorted(seen) == sorted(keys)


class TestDecoratedRecordsRegression:
    """The decorate-sort-undecorate refactor must preserve the exact
    grouping the per-record recomputation produced."""

    HETEROGENEOUS_KEYS = [
        None,
        1,
        1.0,
        2,
        "1",
        "a",
        "b",
        (1, "a"),
        (1, "b"),
        ("a", 1),
        None,
        2.0,
        "a",
        (1, "a"),
    ]

    def _oracle_groups(self, records, n_partitions):
        """The historical algorithm: bucket by stable_hash, sort by
        sort_key computed per record, scan comparing sort_key."""
        from collections import defaultdict

        partitions = defaultdict(list)
        for key, branch, row in records:
            partitions[stable_hash(key) % n_partitions].append((key, branch, row))
        groups = []
        for partition in range(n_partitions):
            bucket = sorted(
                partitions.get(partition, []), key=lambda rec: sort_key(rec[0])
            )
            index = 0
            while index < len(bucket):
                key = bucket[index][0]
                bags = defaultdict(list)
                while index < len(bucket) and sort_key(bucket[index][0]) == sort_key(
                    key
                ):
                    _, branch, row = bucket[index]
                    bags[branch].append(row)
                    index += 1
                groups.append((key, {b: rows for b, rows in bags.items()}))
        return groups

    def test_group_boundaries_unchanged_for_heterogeneous_keys(self):
        for n_partitions in (1, 2, 8):
            records = [
                (key, i % 2, (i, repr(key)))
                for i, key in enumerate(self.HETEROGENEOUS_KEYS)
            ]
            buf = ShuffleBuffer(n_partitions=n_partitions)
            for key, branch, row in records:
                buf.add(key, branch, row)
            got = [
                (key, {b: rows for b, rows in bags.items()})
                for key, bags in buf.all_groups()
            ]
            assert got == self._oracle_groups(records, n_partitions)

    def test_int_and_float_of_equal_value_share_a_group(self):
        buf = ShuffleBuffer(n_partitions=1)
        buf.add(1, 0, ("int",))
        buf.add(1.0, 0, ("float",))
        ((key, bags),) = list(buf.all_groups())
        # numbers sort together and compare equal: one group (as before)
        assert bags[0] == [("int",), ("float",)]

    def test_byte_accounting_matches_serialized_lengths(self):
        from repro.relational.tuples import Bag, serialize_row

        rows = [
            ("alice", 1, 0.5),
            (None, None, None),
            ("k", Bag([("a", 1), ("b", 2)])),
            (True, False, -17),
            ((1, "x"), 2.5, "tail"),
        ]
        buf = ShuffleBuffer(n_partitions=4)
        expected = 0
        for i, row in enumerate(rows):
            key = ("g", i % 2)
            buf.add(key, 0, row)
            expected += len(serialize_row(row)) + len(repr(key)) + 2
        assert buf.bytes == expected

    def test_sorting_never_compares_raw_keys(self):
        class Unorderable:
            def __repr__(self):
                return f"Unorderable({id(self) % 7})"

        buf = ShuffleBuffer(n_partitions=1)
        for i in range(6):
            buf.add(Unorderable(), 0, (i,))
        groups = list(buf.all_groups())
        assert sum(len(bags[0]) for _, bags in groups) == 6


class TestAddBatchEquivalence:
    """add_batch must leave the buffer byte-identical to repeated add."""

    KEY_SETS = {
        "uniform-str": ["b", "a", "b", "c", "a"],
        "uniform-int": [3, 1, 2, 1, 3],
        "uniform-float": [1.5, 0.25, 1.5, 2.0, -3.5],
        "uniform-bool": [True, False, True, True, False],
        "mixed-scalars": ["x", 2, 2.5, True, "y"],
        "with-nones": [None, "a", None, "b", "a"],
        "tuples": [("a", 1), ("a", 2), ("b", 1), ("a", 1), ("b", 2)],
        "unranked": [complex(1, 2), complex(0, 1), complex(1, 2), 1j, 2j],
    }
    ROWS = [
        ("alice", 1, 0.5),
        (None, None, None),
        ("bob", -7, 2.25),
        ("carol", 44, None),
        ("dave", 0, 1.0),
    ]

    def _snapshot(self, buf):
        return (
            buf.records,
            buf.bytes,
            {p: list(records) for p, records in buf._partitions.items()},
            list(buf.all_groups()),
        )

    def test_add_batch_matches_add_for_every_key_shape(self):
        for label, keys in self.KEY_SETS.items():
            serial = ShuffleBuffer(n_partitions=4)
            for key, row in zip(keys, self.ROWS):
                serial.add(key, 0, row)
            batched = ShuffleBuffer(n_partitions=4)
            batched.add_batch(0, list(keys), list(self.ROWS))
            assert self._snapshot(batched) == self._snapshot(serial), label

    def test_add_batch_matches_add_across_chunks_and_branches(self):
        serial = ShuffleBuffer(n_partitions=3)
        batched = ShuffleBuffer(n_partitions=3)
        for branch, keys in enumerate((["a", "b", "a"], ["b", "c", "a"])):
            rows = self.ROWS[: len(keys)]
            for key, row in zip(keys, rows):
                serial.add(key, branch, row)
            batched.add_batch(branch, keys[:2], rows[:2])
            batched.add_batch(branch, keys[2:], rows[2:])
        assert self._snapshot(batched) == self._snapshot(serial)

    def test_single_partition_matches(self):
        serial = ShuffleBuffer(n_partitions=1)
        batched = ShuffleBuffer(n_partitions=1)
        for key, row in zip(["b", "a", "c"], self.ROWS):
            serial.add(key, 0, row)
        batched.add_batch(0, ["b", "a", "c"], self.ROWS[:3])
        assert self._snapshot(batched) == self._snapshot(serial)

    def test_precomputed_row_bytes_trusted_verbatim(self):
        from repro.relational.tuples import serialized_rows_size

        rows = self.ROWS[:3]
        want = serialized_rows_size(rows)
        batched = ShuffleBuffer(n_partitions=2)
        batched.add_batch(0, ["a", "b", "c"], rows, row_bytes=want)
        serial = ShuffleBuffer(n_partitions=2)
        for key, row in zip(["a", "b", "c"], rows):
            serial.add(key, 0, row)
        assert batched.bytes == serial.bytes

    def test_empty_batch_registers_nothing(self):
        buf = ShuffleBuffer(n_partitions=2)
        buf.add_batch(0, [], [])
        assert buf.records == 0 and buf.bytes == 0
        assert buf._branches_seen == set()


class TestSerializedRowsSize:
    def test_columnar_sum_matches_per_row(self):
        from repro.relational.tuples import (
            Bag,
            serialized_row_size,
            serialized_rows_size,
        )

        cases = [
            [],
            [("a", 1, 0.5), ("bb", None, 2.25)],
            [(None, None, None)] * 3,
            [("x", True), ("y", False)],
            [("mixed", 1), ("types", 2.5)],
            [("bag", Bag([("i", 1)])), ("bag2", Bag([]))],
            [("short",), ("rows", "differ", "in", "width")],
            [("not-a-tuple")],  # a bare string "row"
        ]
        for rows in cases:
            want = sum(serialized_row_size(r) for r in rows)
            assert serialized_rows_size(rows) == want, rows
