"""Property-based tests (hypothesis) for core data structures and
system invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.matcher import PlanMatcher
from repro.dfs.filesystem import DistributedFileSystem
from repro.mapreduce.shuffle import ShuffleBuffer, sort_key, stable_hash
from repro.pig.physical.operators import (
    POFilter,
    POForEach,
    POLoad,
    POStore,
)
from repro.pig.physical.plan import PhysicalPlan, linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import FieldSchema, Schema
from repro.relational.tuples import deserialize_rows, serialize_rows
from repro.relational.types import DataType

# -- strategies ----------------------------------------------------------------------

field_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F
    ),
    max_size=12,
)

scalar_value = st.one_of(
    st.none(),
    st.integers(min_value=-(10 ** 9), max_value=10 ** 9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    field_text,
)

key_value = st.one_of(
    st.none(),
    st.integers(min_value=-1000, max_value=1000),
    field_text,
    st.tuples(st.integers(min_value=0, max_value=9), field_text),
)


def typed_rows_strategy():
    """(schema, rows) pairs where rows conform to the schema."""
    dtype_strategy = st.sampled_from(
        [DataType.INT, DataType.DOUBLE, DataType.CHARARRAY]
    )

    def rows_for(dtypes):
        generators = []
        for dtype in dtypes:
            if dtype is DataType.INT:
                generators.append(
                    st.one_of(st.none(), st.integers(-(10 ** 6), 10 ** 6))
                )
            elif dtype is DataType.DOUBLE:
                generators.append(
                    st.one_of(
                        st.none(),
                        st.floats(
                            allow_nan=False, allow_infinity=False, width=32
                        ),
                    )
                )
            else:
                # PigStorage text cannot hold tabs/newlines in a field
                generators.append(
                    st.one_of(
                        st.none(),
                        field_text.filter(lambda s: s != ""),
                    )
                )
        schema = Schema(
            tuple(
                FieldSchema(f"f{i}", dtype) for i, dtype in enumerate(dtypes)
            )
        )
        return st.tuples(
            st.just(schema),
            st.lists(st.tuples(*generators), max_size=30),
        )

    return st.lists(dtype_strategy, min_size=1, max_size=5).flatmap(rows_for)


# -- serialization round trips ------------------------------------------------------------


class TestSerializationProperties:
    @given(typed_rows_strategy())
    @settings(max_examples=60, deadline=None)
    def test_pigstorage_round_trip(self, schema_rows):
        """serialize . deserialize == identity for typed rows (the
        invariant every stored repository output relies on)."""
        schema, rows = schema_rows
        text = serialize_rows(rows)
        restored = deserialize_rows(text, schema)
        assert restored == rows


class TestShuffleProperties:
    @given(st.lists(st.tuples(key_value, st.integers(0, 3)), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_grouping_partitions_records(self, records):
        """Every record lands in exactly one group of its own key."""
        buf = ShuffleBuffer(n_partitions=4)
        for key, branch in records:
            buf.add(key, branch, (key,))
        total = sum(
            len(rows)
            for _, bags in buf.all_groups()
            for rows in bags.values()
        )
        assert total == len(records)

    @given(st.lists(key_value, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_group_keys_unique(self, keys):
        buf = ShuffleBuffer(n_partitions=4)
        for key in keys:
            buf.add(key, 0, (key,))
        seen = [sort_key(k) for k, _ in buf.all_groups()]
        assert len(seen) == len(set(seen))

    @given(key_value)
    @settings(max_examples=100, deadline=None)
    def test_stable_hash_total(self, key):
        assert isinstance(stable_hash(key), int)
        assert stable_hash(key) == stable_hash(key)

    @given(st.lists(key_value, min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_sort_key_is_total_order(self, keys):
        ordered = sorted(keys, key=sort_key)
        # sorting again is a no-op (transitivity sanity)
        assert sorted(ordered, key=sort_key) == ordered


class TestDFSProperties:
    @given(st.binary(max_size=2000), st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_write_read_identity(self, payload, block_size):
        dfs = DistributedFileSystem(n_datanodes=3, block_size=block_size)
        dfs.write_file("f", payload)
        assert dfs.read_file("f") == payload
        assert dfs.file_size("f") == len(payload)

    @given(st.lists(st.binary(min_size=1, max_size=200), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_append_equals_concat(self, chunks):
        dfs = DistributedFileSystem(n_datanodes=3, block_size=32)
        dfs.write_file("f", b"")
        for chunk in chunks:
            dfs.append("f", chunk)
        assert dfs.read_file("f") == b"".join(chunks)


# -- matcher properties --------------------------------------------------------------------


def random_linear_plan(draw_ops, path):
    schema = Schema.of(("a", DataType.INT), ("b", DataType.INT))
    ops = [POLoad(path, schema)]
    for kind, param in draw_ops:
        if kind == "filter":
            ops.append(
                POFilter(BinaryOp(">", Column(0), Const(param)), schema=schema)
            )
        else:
            ops.append(
                POForEach(
                    [Column(param % 2), Column((param + 1) % 2)],
                    [False, False],
                    ["x", "y"],
                    schema=schema,
                )
            )
    ops.append(POStore("out", schema))
    return linear_plan(*ops)


op_spec = st.tuples(
    st.sampled_from(["filter", "project"]), st.integers(0, 3)
)


class TestMatcherProperties:
    @given(st.lists(op_spec, max_size=5), st.sampled_from(["p1", "p2"]))
    @settings(max_examples=60, deadline=None)
    def test_reflexive_containment(self, specs, path):
        """Every plan is contained in itself (Algorithm 1 sanity)."""
        plan_a = random_linear_plan(specs, path)
        plan_b = random_linear_plan(specs, path)
        result = PlanMatcher().match(plan_a, plan_b)
        assert result is not None
        assert result.whole_job

    @given(st.lists(op_spec, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_prefix_containment(self, specs):
        """Any prefix of a pipeline is contained in the full pipeline."""
        full = random_linear_plan(specs, "p")
        for cut in range(len(specs)):
            prefix = random_linear_plan(specs[: cut + 1], "p")
            assert PlanMatcher().match(full, prefix) is not None

    @given(st.lists(op_spec, max_size=4), st.lists(op_spec, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_containment_requires_signature_prefix(self, specs_a, specs_b):
        """match(A, B) implies B's pipeline is a prefix of A's."""
        plan_a = random_linear_plan(specs_a, "p")
        plan_b = random_linear_plan(specs_b, "p")
        result = PlanMatcher().match(plan_a, plan_b)
        is_prefix = specs_b == specs_a[: len(specs_b)]
        if is_prefix:
            assert result is not None
        if result is not None and not is_prefix:
            # a match without prefix equality can only happen when the
            # differing suffix produces identical signatures
            assert len(specs_b) <= len(specs_a)

    @given(st.lists(op_spec, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_plan_fingerprint_deterministic(self, specs):
        a = random_linear_plan(specs, "p")
        b = random_linear_plan(specs, "p")
        assert a.fingerprint() == b.fingerprint()

    @given(st.lists(op_spec, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_serialization_preserves_fingerprint(self, specs):
        plan = random_linear_plan(specs, "p")
        assert (
            PhysicalPlan.from_dict(plan.to_dict()).fingerprint()
            == plan.fingerprint()
        )


# -- engine-level property: reuse never changes answers --------------------------------------


class TestReuseCorrectnessProperty:
    @given(
        st.integers(min_value=0, max_value=5),
        st.sampled_from(["SUM", "COUNT", "AVG", "MAX", "MIN"]),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_rewritten_equals_fresh(self, threshold, agg):
        """For a family of queries, running against a primed repository
        returns exactly what a fresh run returns."""
        from repro.core.manager import ReStoreManager
        from repro.pig.engine import PigServer

        def data():
            dfs = DistributedFileSystem(n_datanodes=3)
            rows = [
                f"u{i % 4}\t{i}\t{float(i)}" for i in range(12)
            ]
            dfs.write_file("d", "\n".join(rows) + "\n")
            return dfs

        query = f"""
            A = load 'd' as (u, n:int, v:double);
            B = filter A by n > {threshold};
            D = group B by u;
            E = foreach D generate group, {agg}(B.v);
            store E into 'out';
        """
        fresh = PigServer(data()).run(query).outputs["out"]

        dfs = data()
        manager = ReStoreManager(dfs)
        server = PigServer(dfs, restore=manager)
        server.run(query.replace("'out'", "'prime'"))
        reused = server.run(query).outputs["out"]
        assert sorted(reused, key=repr) == sorted(fresh, key=repr)


# -- zero-copy data plane round trips -----------------------------------------------------


nested_safe_text = field_text.filter(lambda s: s != "")

canonical_float = st.floats(allow_nan=False, allow_infinity=False, width=32)


def canonical_rows_strategy():
    """(schema, rows) pairs with nested bag fields where rows are
    *canonical*: they survive a PigStorage round trip unchanged (the
    contract the typed-dataset cache pins rows under)."""
    from repro.relational.tuples import Bag

    scalar_types = [
        DataType.INT,
        DataType.DOUBLE,
        DataType.CHARARRAY,
        DataType.BOOLEAN,
    ]

    def value_for(dtype):
        if dtype is DataType.INT:
            return st.one_of(st.none(), st.integers(-(10**6), 10**6))
        if dtype is DataType.DOUBLE:
            return st.one_of(st.none(), canonical_float)
        if dtype is DataType.BOOLEAN:
            return st.one_of(st.none(), st.booleans())
        return st.one_of(st.none(), nested_safe_text)

    def build(spec):
        fields = []
        generators = []
        for i, dtype in enumerate(spec):
            if dtype == "bag":
                inner_types = [DataType.CHARARRAY, DataType.INT, DataType.DOUBLE]
                inner = Schema(
                    tuple(
                        FieldSchema(f"b{i}_{j}", t)
                        for j, t in enumerate(inner_types)
                    )
                )
                fields.append(FieldSchema(f"f{i}", DataType.BAG, inner))
                inner_row = st.tuples(*[value_for(t) for t in inner_types])
                generators.append(
                    st.one_of(
                        st.none(),
                        st.lists(inner_row, max_size=5).map(Bag),
                    )
                )
            else:
                fields.append(FieldSchema(f"f{i}", dtype))
                generators.append(value_for(dtype))
        schema = Schema(tuple(fields))
        return st.tuples(
            st.just(schema),
            st.lists(st.tuples(*generators), max_size=20),
        )

    spec = st.lists(
        st.one_of(st.sampled_from(scalar_types), st.just("bag")),
        min_size=1,
        max_size=4,
    )
    return spec.flatmap(build)


class TestDataPlaneProperties:
    @given(canonical_rows_strategy())
    @settings(
        max_examples=80,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_canonical_round_trip_identity(self, schema_rows):
        """deserialize(serialize(rows)) == rows for canonical rows —
        including nested bags, all-null rows, and the interior empty
        lines single-null-field rows produce."""
        from repro.dfs.dataset import canonical_ascii_size, rows_are_canonical

        schema, rows = schema_rows
        rows = [tuple(row) for row in rows]
        assert rows_are_canonical(rows, schema)
        text = serialize_rows(rows)
        assert deserialize_rows(text, schema) == rows
        # the fused one-pass sizer agrees with the real serialization
        size = canonical_ascii_size(tuple(rows), schema)
        assert size == len(text.encode())

    @given(canonical_rows_strategy())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_write_rows_read_rows_identity(self, schema_rows):
        """The DFS typed path returns exactly the written rows, and
        the text it accounts for is byte-identical to eager
        serialization."""
        schema, rows = schema_rows
        rows = tuple(tuple(row) for row in rows)
        dfs = DistributedFileSystem(n_datanodes=2, block_size=256)
        dfs.write_rows("f", rows, schema)
        assert dfs.read_rows("f", schema) == rows
        data = dfs.read_file("f")
        assert data == serialize_rows(rows).encode()
        assert dfs.file_size("f") == len(data)
