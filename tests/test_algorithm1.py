"""Cross-check the faithful Algorithm 1 port against the production
matcher: both must agree on containment for a range of plan shapes."""

import pytest

from repro.core.algorithm1 import PairwisePlanTraversal, algorithm1_contains
from repro.core.matcher import PlanMatcher
from repro.pig.physical.operators import (
    POFilter,
    POForEach,
    POGlobalRearrange,
    POLoad,
    POLocalRearrange,
    POPackage,
    POStore,
)
from repro.pig.physical.plan import PhysicalPlan, linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import Schema
from repro.relational.types import DataType

SCHEMA = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))


def pipeline(path, *stages, store="out"):
    ops = [POLoad(path, SCHEMA)]
    for stage in stages:
        if stage == "filter":
            ops.append(POFilter(BinaryOp(">", Column(1), Const(1.0)), schema=SCHEMA))
        elif stage == "filter2":
            ops.append(POFilter(BinaryOp("<", Column(1), Const(9.0)), schema=SCHEMA))
        elif stage == "project":
            ops.append(
                POForEach([Column(0)], [False], ["u"], schema=SCHEMA.project([0]))
            )
    ops.append(POStore(store, SCHEMA))
    return linear_plan(*ops)


def join_job():
    plan = PhysicalPlan()
    la = plan.add(POLoad("a", SCHEMA))
    pa = plan.add(POForEach([Column(0)], [False], ["u"], schema=SCHEMA.project([0])))
    lb = plan.add(POLoad("b", SCHEMA))
    pb = plan.add(POForEach([Column(0)], [False], ["n"], schema=SCHEMA.project([0])))
    ra = plan.add(POLocalRearrange([Column(0)], branch=0))
    rb = plan.add(POLocalRearrange([Column(0)], branch=1))
    gr = plan.add(POGlobalRearrange(2))
    pk = plan.add(POPackage("join", 2))
    st = plan.add(POStore("out"))
    for src, dst in [
        (la, pa), (pa, ra), (lb, pb), (pb, rb),
        (ra, gr), (rb, gr), (gr, pk), (pk, st),
    ]:
        plan.connect(src, dst)
    return plan


CASES = [
    # (input plan builder, repo plan builder, expected containment)
    (lambda: pipeline("p", "filter", "project"),
     lambda: pipeline("p", "filter"), True),
    (lambda: pipeline("p", "filter", "project"),
     lambda: pipeline("p", "filter", "project"), True),
    (lambda: pipeline("p", "filter"),
     lambda: pipeline("p", "filter", "project"), False),
    (lambda: pipeline("p", "filter"),
     lambda: pipeline("q", "filter"), False),
    (lambda: pipeline("p", "filter", "filter2"),
     lambda: pipeline("p", "filter2"), False),  # wrong order
    (lambda: join_job(), lambda: pipeline("a", "project"), True),
    (lambda: join_job(), lambda: pipeline("b", "project"), True),
    (lambda: join_job(), lambda: join_job(), True),
    (lambda: join_job(), lambda: pipeline("c", "project"), False),
]


class TestAgainstProductionMatcher:
    @pytest.mark.parametrize("case_index", range(len(CASES)))
    def test_agreement(self, case_index):
        make_input, make_repo, expected = CASES[case_index]
        input_plan, repo_plan = make_input(), make_repo()
        reference = algorithm1_contains(input_plan, repo_plan)
        production = PlanMatcher().match(input_plan, repo_plan) is not None
        assert reference == expected
        assert production == expected
        assert reference == production


class TestTraversalDetails:
    def test_returns_last_match(self):
        traversal = PairwisePlanTraversal(
            pipeline("p", "filter", "project"), pipeline("p", "filter")
        )
        result = traversal.run()
        assert result is not None
        assert isinstance(result, POFilter)

    def test_no_match_returns_none(self):
        traversal = PairwisePlanTraversal(
            pipeline("p", "filter"), pipeline("x", "filter")
        )
        assert traversal.run() is None

    def test_matched_repo_ids_cover_plan(self):
        repo = pipeline("p", "filter")
        traversal = PairwisePlanTraversal(
            pipeline("p", "filter", "project"), repo
        )
        traversal.run()
        repo_non_stores = {
            op.op_id for op in repo.operators if not isinstance(op, POStore)
        }
        assert repo_non_stores <= traversal.matched_repo_ids

    def test_empty_repo_sources(self):
        plan = pipeline("p", "filter")
        empty = PhysicalPlan()
        traversal = PairwisePlanTraversal(plan, empty)
        assert traversal.run() is None
