"""API-robustness tests: error paths and small behaviours not covered
by the feature suites."""

import pytest

from repro.costmodel.model import CostModel
from repro.dfs.filesystem import DistributedFileSystem
from repro.experiments.common import ExperimentResult
from repro.mapreduce.job import JobConf, MapReduceJob, Workflow
from repro.mapreduce.stats import JobStats, StoreStat, TimeBreakdown
from repro.pig.engine import PigServer
from repro.pig.physical.operators import POLoad, POStore
from repro.pig.physical.plan import linear_plan
from repro.relational.schema import Schema
from repro.relational.types import DataType

SCHEMA = Schema.of(("a", DataType.CHARARRAY))


class TestWorkflowApi:
    def _workflow(self):
        job_a = MapReduceJob(
            linear_plan(POLoad("in", SCHEMA), POStore("mid", SCHEMA)),
            temporary=True,
        )
        job_b = MapReduceJob(
            linear_plan(POLoad("mid", SCHEMA), POStore("out", SCHEMA))
        )
        return Workflow(jobs=[job_a, job_b]), job_a, job_b

    def test_job_by_id_missing(self):
        workflow, *_ = self._workflow()
        with pytest.raises(KeyError):
            workflow.job_by_id("nope")

    def test_producers_map(self):
        workflow, job_a, job_b = self._workflow()
        producers = workflow.producers()
        assert producers["mid"] is job_a
        assert producers["out"] is job_b

    def test_cycle_detected(self):
        job_a = MapReduceJob(
            linear_plan(POLoad("x", SCHEMA), POStore("y", SCHEMA))
        )
        job_b = MapReduceJob(
            linear_plan(POLoad("y", SCHEMA), POStore("x", SCHEMA))
        )
        workflow = Workflow(jobs=[job_a, job_b])
        with pytest.raises(ValueError):
            workflow.topo_order()

    def test_len_and_iter(self):
        workflow, *_ = self._workflow()
        assert len(workflow) == 2
        assert len(list(workflow)) == 2

    def test_repr(self):
        workflow, job_a, _ = self._workflow()
        assert "Workflow" in repr(workflow)
        assert "map-only" in repr(job_a)


class TestStatsApi:
    def test_store_for_path(self):
        stats = JobStats(job_id="j")
        stats.stores.append(StoreStat(path="p", bytes=10, records=2))
        assert stats.store_for_path("p").bytes == 10
        assert stats.store_for_path("missing") is None

    def test_output_vs_side_bytes(self):
        stats = JobStats(job_id="j")
        stats.stores.append(StoreStat(path="main", bytes=100))
        stats.stores.append(StoreStat(path="side", bytes=40, side=True))
        assert stats.output_bytes == 100
        assert stats.side_store_bytes == 40
        assert stats.total_store_bytes == 140

    def test_sim_seconds_without_model(self):
        stats = JobStats(job_id="j")
        assert stats.sim_seconds == 0.0

    def test_time_breakdown_total(self):
        bd = TimeBreakdown(
            t_startup=1, t_load=2, t_ops=3, t_sort=4, t_store=5,
            t_side_stores=6,
        )
        assert bd.total == 21
        assert bd.total_without_side_stores == 15


class TestEngineErrors:
    def test_missing_input_file(self):
        dfs = DistributedFileSystem(n_datanodes=2)
        server = PigServer(dfs)
        from repro.exceptions import DFSError

        with pytest.raises(DFSError):
            server.run("A = load 'nope' as (x); store A into 'o';")

    def test_load_without_schema_fails_cleanly(self):
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_file("d", "a\n")
        server = PigServer(dfs)
        result = server.run("A = load 'd' as (x); store A into 'o';")
        assert result.outputs["o"] == [("a",)]

    def test_conf_defaults(self):
        conf = JobConf()
        assert conf.n_reducers == 28


class TestExperimentResult:
    def test_empty_rows_table(self):
        result = ExperimentResult(title="t", columns=["a"], rows=[])
        text = result.format_table()
        assert "t" in text

    def test_none_cells_render_dash(self):
        result = ExperimentResult(
            title="t", columns=["a", "b"], rows=[{"a": 1}]
        )
        assert "-" in result.format_table()


class TestCostModelScaling:
    def test_scaled_helper(self):
        model = CostModel(data_scale=3.0)
        assert model.scaled(10) == 30.0

    def test_workflow_time_single_job(self):
        model = CostModel()
        assert model.workflow_time({"a": 7.0}, {"a": []}) == 7.0


class TestInterpreterGuards:
    def test_load_mid_pipeline_rejected(self):
        from repro.execution.interpreter import JobInterpreter

        plan = linear_plan(
            POLoad("x", SCHEMA), POLoad("y", SCHEMA), POStore("o", SCHEMA)
        )
        # loads chained after loads are structurally invalid
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_file("x", "a\n")
        job = MapReduceJob(plan)
        from repro.exceptions import PlanError

        with pytest.raises(PlanError):
            JobInterpreter(job, dfs).run()

    def test_store_without_schema_still_writes(self):
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_file("x", "a\nb\n")
        plan = linear_plan(POLoad("x", SCHEMA), POStore("o"))
        job = MapReduceJob(plan)
        from repro.execution.interpreter import JobInterpreter

        stats = JobInterpreter(job, dfs).run()
        assert stats.output_records == 2
