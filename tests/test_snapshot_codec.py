"""The versioned snapshot codec: capture, restore, laziness, hygiene.

A snapshot must rebuild a byte-identical matching surface — same
entries, same fingerprints, same §3 scan order — in O(entries read),
without re-registering a single plan, and post-restore id allocation
must never collide with persisted state.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.repo_scale import build_repository, generate_entry_specs
from repro.core.repository import Repository
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.namenode import InputExtent
from repro.persistence.durability import (
    PersistenceConfig,
    derive_id_floors,
    recover,
)
from repro.persistence.snapshot import (
    LazyPlan,
    RepositorySnapshot,
    SnapshotError,
    entry_from_record,
    entry_record,
)


@pytest.fixture
def repository() -> Repository:
    repo = build_repository(generate_entry_specs(24, seed=7), seed=7)
    repo.ordered_entries()  # integrate the pending order, like a session
    return repo


def roundtrip(repository: Repository, **capture_kwargs) -> RepositorySnapshot:
    data = RepositorySnapshot.capture(repository, **capture_kwargs).to_bytes()
    return RepositorySnapshot.from_bytes(data)


class TestRoundTrip:
    def test_entries_and_fingerprints_survive(self, repository):
        restored = roundtrip(repository).restore_repository()
        assert len(restored) == len(repository)
        for entry in repository.entries():
            twin = restored.get(entry.entry_id)
            assert twin.plan.fingerprint() == entry.plan.fingerprint()
            assert twin.output_path == entry.output_path
            assert twin.stats.exec_time_s == entry.stats.exec_time_s
            assert twin.input_mtimes == entry.input_mtimes

    def test_scan_order_is_identical(self, repository):
        restored = roundtrip(repository).restore_repository()
        assert [e.entry_id for e in restored.ordered_entries()] == [
            e.entry_id for e in repository.ordered_entries()
        ]

    def test_restore_spends_zero_matcher_traversals(self, repository):
        restored = roundtrip(repository).restore_repository()
        restored.ordered_entries()
        assert restored.index_stats.subsume_checks == 0
        assert restored.index_stats.order_integrations == 0

    def test_manager_and_dfs_state_travel(self, repository):
        snapshot = roundtrip(
            repository,
            kept_paths={"tmp/s3/sj7", "tmp/s3/sj9"},
            clock=42,
            dfs_ids={"next_script_id": 4, "next_subjob_id": 10},
        )
        assert snapshot.manager_state == {
            "kept_paths": ["tmp/s3/sj7", "tmp/s3/sj9"],
            "clock": 42,
        }
        assert snapshot.dfs_state == {"next_script_id": 4, "next_subjob_id": 10}

    def test_pending_order_state_is_faithful(self):
        # capture *without* flushing: the pending set must survive so
        # the restored repository owes exactly what the original owed
        repo = build_repository(generate_entry_specs(6, seed=3), seed=3)
        restored = roundtrip(repo).restore_repository()
        restored.ordered_entries()
        # the restored repository paid the ordering work the original
        # still owed (batched, as add_batch would have)
        assert restored.index_stats.batch_entries == 6
        assert [e.entry_id for e in restored.ordered_entries()] == [
            e.entry_id for e in repo.ordered_entries()
        ]


class TestValidation:
    def test_bad_magic_rejected(self, repository):
        data = RepositorySnapshot.capture(repository).to_bytes()
        with pytest.raises(SnapshotError, match="magic"):
            RepositorySnapshot.from_bytes(b"XXXX" + data[4:])

    def test_truncated_body_rejected(self, repository):
        data = RepositorySnapshot.capture(repository).to_bytes()
        with pytest.raises(SnapshotError, match="truncated"):
            RepositorySnapshot.from_bytes(data[: len(data) // 2])

    def test_bit_rot_rejected(self, repository):
        data = bytearray(RepositorySnapshot.capture(repository).to_bytes())
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(SnapshotError, match="checksum"):
            RepositorySnapshot.from_bytes(bytes(data))

    def test_newer_version_rejected(self, repository):
        snapshot = RepositorySnapshot.capture(repository)
        snapshot.payload["version"] = 99
        with pytest.raises(SnapshotError, match="newer"):
            RepositorySnapshot.from_bytes(snapshot.to_bytes())


class TestLazyPlan:
    def test_metadata_served_without_materializing(self, repository):
        restored = roundtrip(repository).restore_repository()
        entry = restored.entries()[0]
        original = repository.get(entry.entry_id)
        assert isinstance(entry.plan, LazyPlan)
        assert entry.plan.fingerprint() == original.plan.fingerprint()
        assert (
            entry.plan.load_signature_set()
            == original.plan.load_signature_set()
        )
        assert (
            entry.plan.signature_counts() == original.plan.signature_counts()
        )
        assert not entry.plan.materialized

    def test_structural_access_materializes_real_plan(self, repository):
        restored = roundtrip(repository).restore_repository()
        entry = restored.entries()[0]
        original = repository.get(entry.entry_id)
        assert len(entry.plan) == len(original.plan)  # forces the rebuild
        assert entry.plan.materialized
        assert entry.plan.to_dict() == original.plan.to_dict()

    def test_fingerprint_mismatch_is_corruption(self, repository):
        record = entry_record(repository.entries()[0])
        record["derived"]["fingerprint"] = "fp_bogus"
        entry = entry_from_record(record)
        assert entry.plan.fingerprint() == "fp_bogus"  # metadata as stored
        with pytest.raises(SnapshotError, match="mismatch"):
            entry.plan.materialize()


class TestIdHygiene:
    def test_new_entry_ids_resume_past_persisted(self, repository):
        restored = roundtrip(repository).restore_repository()
        top = max(e.entry_id for e in repository.entries())
        fresh = restored.add(entry_from_record(_unowned_record(repository)))
        assert fresh.entry_id > top

    def test_dfs_id_floors_pushed_on_recover(self, tmp_path):
        repo = build_repository(generate_entry_specs(4, seed=5), seed=5)
        repo.ordered_entries()
        snapshot = RepositorySnapshot.capture(
            repo, dfs_ids={"next_script_id": 40, "next_subjob_id": 90}
        )
        config = PersistenceConfig(
            snapshot_path=str(tmp_path / "r.snap"),
            journal_path=str(tmp_path / "r.journal"),
            backend="local",
        )
        config.snapshot_storage().write(snapshot.to_bytes())
        dfs = DistributedFileSystem(n_datanodes=2)
        # a legacy (pre-block-store) snapshot carries no payload refs:
        # the recovery scrub tolerates its entries only while their
        # output bytes are present, so stage them like a live DFS
        for entry in repo.entries():
            dfs.write_file(entry.output_path, b"x")
        recovered = recover(config, dfs)
        assert len(recovered.repository) == 4
        assert recovered.payloads_legacy == 4
        assert dfs.id_state()["next_script_id"] >= 40
        assert dfs.id_state()["next_subjob_id"] >= 90
        # allocation after recovery starts past the persisted floor
        assert int(dfs.next_script_id()) >= 40

    def test_floors_derived_from_entry_paths(self):
        repo = Repository()
        spec_repo = build_repository(generate_entry_specs(2, seed=9), seed=9)
        for i, entry in enumerate(spec_repo.entries()):
            record = entry_record(entry)
            record["entry_id"] = ""
            record["output_path"] = f"tmp/s{7 + i}/sj{30 + i}"
            repo.add(entry_from_record(record))
        floors = derive_id_floors(repo)
        assert floors == {"next_script_id": 9, "next_subjob_id": 32}


def _unowned_record(repository: Repository) -> dict:
    """An entry record with no id, forcing the repository to assign."""
    record = entry_record(repository.entries()[0])
    record["entry_id"] = ""
    record["output_path"] = "bench/stored/fresh"
    return record


class TestInputExtentsColumn:
    """Version 2 adds the ``input_extents`` entry-row column; version-1
    snapshots (one column short) must keep loading with empty extents."""

    def _with_extents(self, repository: Repository) -> Repository:
        for i, entry in enumerate(repository.entries()[:3]):
            entry.input_extents["data/pv"] = InputExtent(
                mtime=10 + i,
                generation=i,
                birth=5 + i,
                size=100 * (i + 1),
                # crc is optional in the wire form: None must survive too
                crc=None if i == 0 else 0xBEEF + i,
            )
        return repository

    def test_extents_round_trip(self, repository):
        source = self._with_extents(repository)
        restored = roundtrip(source).restore_repository()
        for entry in source.entries():
            assert restored.get(entry.entry_id).input_extents == (
                entry.input_extents
            )

    def test_v1_rows_load_with_empty_extents(self, repository):
        snapshot = roundtrip(self._with_extents(repository))
        payload = json.loads(json.dumps(snapshot.payload))
        payload["version"] = 1
        payload["repository"]["entries"] = [
            row[:9] + row[10:] for row in payload["repository"]["entries"]
        ]
        restored = RepositorySnapshot(
            payload, snapshot.cold
        ).restore_repository()
        assert len(restored) == len(repository)
        for entry in repository.entries():
            twin = restored.get(entry.entry_id)
            assert twin.input_extents == {}
            assert twin.input_mtimes == entry.input_mtimes
            assert twin.plan.fingerprint() == entry.plan.fingerprint()

    def test_entry_record_round_trips_extents(self, repository):
        source = self._with_extents(repository)
        for entry in source.entries()[:3]:
            twin = entry_from_record(entry_record(entry))
            assert twin.input_extents == entry.input_extents
