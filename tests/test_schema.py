"""Unit tests for repro.relational.schema."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import FieldSchema, Schema
from repro.relational.types import DataType


class TestConstruction:
    def test_of_with_pairs(self):
        schema = Schema.of(("a", DataType.INT), ("b", DataType.CHARARRAY))
        assert schema.names == ("a", "b")
        assert schema.types == (DataType.INT, DataType.CHARARRAY)

    def test_of_with_bare_names(self):
        schema = Schema.of("x", "y")
        assert schema.names == ("x", "y")
        assert all(t is DataType.BYTEARRAY for t in schema.types)

    def test_of_with_string_types(self):
        schema = Schema.of(("a", "int"))
        assert schema[0].dtype is DataType.INT

    def test_parse(self):
        schema = Schema.parse("user:chararray, revenue:double, note")
        assert schema.names == ("user", "revenue", "note")
        assert schema[1].dtype is DataType.DOUBLE
        assert schema[2].dtype is DataType.BYTEARRAY

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_empty_schema(self):
        assert len(Schema()) == 0


class TestLookup:
    def setup_method(self):
        self.schema = Schema.of(("a", DataType.INT), ("b", DataType.DOUBLE))

    def test_index_of_name(self):
        assert self.schema.index_of("b") == 1

    def test_index_of_positional(self):
        assert self.schema.index_of("$0") == 0

    def test_positional_out_of_range(self):
        with pytest.raises(SchemaError):
            self.schema.index_of("$5")

    def test_missing_name(self):
        with pytest.raises(SchemaError):
            self.schema.index_of("zz")

    def test_has_field(self):
        assert self.schema.has_field("a")
        assert not self.schema.has_field("zz")

    def test_field_named(self):
        assert self.schema.field_named("a").dtype is DataType.INT


class TestDerivation:
    def test_project(self):
        schema = Schema.of("a", "b", "c")
        assert schema.project([2, 0]).names == ("c", "a")

    def test_concat_disambiguates(self):
        left = Schema.of("a", "b")
        right = Schema.of("b", "c")
        merged = left.concat(right)
        assert merged.names == ("a", "b", "b_1", "c")

    def test_concat_no_disambiguation_needed(self):
        merged = Schema.of("a").concat(Schema.of("b"))
        assert merged.names == ("a", "b")

    def test_rename(self):
        schema = Schema.of("a", "b").rename({"a": "x"})
        assert schema.names == ("x", "b")

    def test_fingerprint_stable(self):
        s1 = Schema.of(("a", DataType.INT))
        s2 = Schema.of(("a", DataType.INT))
        assert s1.fingerprint() == s2.fingerprint()

    def test_fingerprint_type_sensitive(self):
        s1 = Schema.of(("a", DataType.INT))
        s2 = Schema.of(("a", DataType.DOUBLE))
        assert s1.fingerprint() != s2.fingerprint()


class TestNestedAndSerialization:
    def test_inner_schema(self):
        inner = Schema.of(("x", DataType.INT))
        schema = Schema((FieldSchema("bag", DataType.BAG, inner),))
        assert schema[0].inner is inner

    def test_round_trip(self):
        inner = Schema.of(("x", DataType.INT))
        schema = Schema(
            (
                FieldSchema("group", DataType.CHARARRAY),
                FieldSchema("bag", DataType.BAG, inner),
            )
        )
        restored = Schema.from_dict(schema.to_dict())
        assert restored.fingerprint() == schema.fingerprint()
        assert restored[1].inner.names == ("x",)

    def test_str(self):
        schema = Schema.of(("a", DataType.INT))
        assert str(schema) == "(a:int)"

    def test_iteration(self):
        schema = Schema.of("a", "b")
        assert [f.name for f in schema] == ["a", "b"]

    def test_with_name(self):
        field = FieldSchema("a", DataType.INT)
        assert field.with_name("b").name == "b"
        assert field.with_name("b").dtype is DataType.INT
