"""Cross-session repository durability.

ReStore's value compounds across submissions that may be days apart
(§1: Facebook keeps results for seven days), so the repository must
survive engine restarts.  These tests persist through the snapshot +
journal subsystem — the snapshot is just another replicated file on
the DFS it indexes — and verify a *fresh* manager recovered from it
still rewrites new queries against the stored files, with the same
decisions a never-restarted manager would have made.
"""

from __future__ import annotations

import pytest

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.repository import Repository
from repro.persistence.durability import (
    PersistenceConfig,
    RepositoryPersister,
    recover,
)
from repro.pig.engine import PigServer

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"

Q2 = f"""
A = load 'data/page_views' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load 'data/users' as ({USERS});
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'OUT';
"""

CONFIG = PersistenceConfig()  # dfs backend, default restore/ paths


def first_session(dfs):
    """Run a query under a live persister, then snapshot into the DFS."""
    manager = ReStoreManager(dfs)
    persister = RepositoryPersister(manager, CONFIG)
    server = PigServer(dfs, restore=manager)
    result = server.run(Q2.replace("OUT", "out/session1"))
    persister.close(snapshot=True)
    return result, manager


def second_session(dfs):
    """A brand-new manager recovered from the persisted snapshot."""
    recovered = recover(CONFIG, dfs)
    manager = ReStoreManager(dfs, repository=recovered.repository)
    manager.kept_paths.update(recovered.kept_paths)
    manager.kept_paths.update(e.output_path for e in recovered.repository.entries())
    manager.clock = max(manager.clock, recovered.clock)
    server = PigServer(dfs, restore=manager)
    return server, manager


class TestCrossSessionReuse:
    def test_repository_round_trips_through_dfs(self, small_data):
        _, manager = first_session(small_data)
        restored = recover(CONFIG, small_data).repository
        assert len(restored) == len(manager.repository)
        for entry in manager.repository:
            twin = restored.get(entry.entry_id)
            assert twin.plan.fingerprint() == entry.plan.fingerprint()
            assert twin.output_path == entry.output_path

    def test_new_session_reuses_old_results(self, small_data):
        result1, _ = first_session(small_data)
        server, manager = second_session(small_data)
        result2 = server.run(Q2.replace("OUT", "out/session2"))
        assert sorted(result2.outputs["out/session2"]) == sorted(
            result1.outputs["out/session1"]
        )
        assert manager.rewrite_count + manager.elimination_count >= 1

    def test_variant_reuses_restored_subjobs(self, small_data):
        first_session(small_data)
        server, manager = second_session(small_data)
        variant = Q2.replace("SUM", "MAX").replace("OUT", "out/vmax")
        result = server.run(variant)
        fresh = PigServer(small_data).run(
            Q2.replace("SUM", "MAX").replace("OUT", "out/vfresh")
        )
        assert sorted(result.outputs["out/vmax"]) == sorted(
            fresh.outputs["out/vfresh"]
        )
        decisions = ReStoreManager.legacy_strings(result.events)
        assert any("group" in line for line in decisions)

    def test_restored_statistics_preserve_ordering(self, small_data):
        _, manager = first_session(small_data)
        order_before = [e.entry_id for e in manager.repository.ordered_entries()]
        restored = recover(CONFIG, small_data).repository
        order_after = [e.entry_id for e in restored.ordered_entries()]
        assert order_before == order_after

    def test_eviction_applies_to_restored_entries(self, small_data):
        from repro.core.eviction import InputModifiedEviction

        first_session(small_data)
        repository = recover(CONFIG, small_data).repository
        manager = ReStoreManager(
            small_data,
            repository=repository,
            config=ReStoreConfig(eviction_policies=[InputModifiedEviction()]),
        )
        # restored entries own their stored files, as in a live session
        manager.kept_paths.update(e.output_path for e in repository)
        small_data.write_file("data/page_views", "z\t1\t1\t1.0\ti\tl\n", overwrite=True)
        small_data.write_file("data/users", "z\tp\ta\tc\n", overwrite=True)
        manager.clock = 1
        evicted = manager.run_evictions()
        assert evicted
        # the cascade clears entries whose inputs were other (now
        # evicted) stored results, transitively
        assert len(manager.repository) == 0


class TestSessionWarmRestart:
    """The full ``ReStoreSession(persistence=...)`` lifecycle: the
    session recovers, journals, and its successor starts warm."""

    def test_session_restart_reuses_results(self, small_data):
        from repro.session import ReStoreSession

        first = ReStoreSession(dfs=small_data, persistence=CONFIG)
        result1 = first.run(Q2.replace("OUT", "out/s1"))
        first.persister.take_snapshot()
        first.close()

        second = ReStoreSession(dfs=small_data, persistence=CONFIG)
        assert len(second.repository) == len(first.repository)
        result2 = second.run(Q2.replace("OUT", "out/s2"))
        second.close()
        assert sorted(result2.outputs["out/s2"]) == sorted(result1.outputs["out/s1"])
        assert second.manager.rewrite_count + second.manager.elimination_count >= 1

    def test_session_validates_conflicting_arguments(self, small_data):
        from repro.session import ReStoreSession

        with pytest.raises(ValueError, match="repository"):
            ReStoreSession(dfs=small_data, persistence=CONFIG, repository=Repository())
        with pytest.raises(ValueError, match="restore_enabled"):
            ReStoreSession(dfs=small_data, persistence=CONFIG, restore_enabled=False)

    def test_service_restart_reuses_results(self, small_data):
        from repro.service import JobService

        with JobService(dfs=small_data, persistence=CONFIG) as service:
            tenant = service.open_session("alice")
            tenant.run(Q2.replace("OUT", "out/svc1"))
            service.persister.take_snapshot()
            entries_before = len(service.repository)

        with JobService(dfs=small_data, persistence=CONFIG) as successor:
            assert len(successor.repository) == entries_before
            tenant = successor.open_session("bob")
            result = tenant.run(Q2.replace("OUT", "out/svc2"))
            stats = successor.manager
            assert stats.rewrite_count + stats.elimination_count >= 1
        assert result.outputs["out/svc2"]


class TestLegacyJsonLoader:
    """The one surviving legacy loader: the pre-snapshot entries-only
    JSON dump still rebuilds a repository (via batched re-registration);
    everything else goes through the snapshot codec."""

    def test_from_legacy_json_round_trip(self, small_data):
        import json

        manager = ReStoreManager(small_data)
        server = PigServer(small_data, restore=manager)
        server.run(Q2.replace("OUT", "out/shim"))
        legacy = json.dumps(
            {"entries": [e.to_dict() for e in manager.repository.entries()]}
        )
        restored = Repository.from_legacy_json(legacy)
        assert len(restored) == len(manager.repository)
        assert [e.entry_id for e in restored.ordered_entries()] == [
            e.entry_id for e in manager.repository.ordered_entries()
        ]
