"""Cross-session repository durability.

ReStore's value compounds across submissions that may be days apart
(§1: Facebook keeps results for seven days), so the repository must
survive engine restarts.  These tests serialize the repository to
JSON — storable in the DFS itself — and verify a *fresh* manager
reloaded from it still rewrites new queries against the stored files.
"""


from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.repository import Repository
from repro.pig.engine import PigServer

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"

Q2 = f"""
A = load 'data/page_views' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load 'data/users' as ({USERS});
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'OUT';
"""

REPO_PATH = "restore/repository.json"


def first_session(dfs):
    """Run a query, then persist the repository into the DFS."""
    manager = ReStoreManager(dfs)
    server = PigServer(dfs, restore=manager)
    result = server.run(Q2.replace("OUT", "out/session1"))
    dfs.write_file(REPO_PATH, manager.repository.to_json(), overwrite=True)
    return result, manager


def second_session(dfs):
    """A brand-new manager bootstrapped from the persisted repository."""
    repository = Repository.from_json(dfs.read_text(REPO_PATH))
    manager = ReStoreManager(dfs, repository=repository)
    manager.kept_paths.update(e.output_path for e in repository)
    server = PigServer(dfs, restore=manager)
    return server, manager


class TestCrossSessionReuse:
    def test_repository_round_trips_through_dfs(self, small_data):
        _, manager = first_session(small_data)
        restored = Repository.from_json(small_data.read_text(REPO_PATH))
        assert len(restored) == len(manager.repository)
        for entry in manager.repository:
            twin = restored.get(entry.entry_id)
            assert twin.plan.fingerprint() == entry.plan.fingerprint()
            assert twin.output_path == entry.output_path

    def test_new_session_reuses_old_results(self, small_data):
        result1, _ = first_session(small_data)
        server, manager = second_session(small_data)
        result2 = server.run(Q2.replace("OUT", "out/session2"))
        assert sorted(result2.outputs["out/session2"]) == sorted(
            result1.outputs["out/session1"]
        )
        assert manager.rewrite_count + manager.elimination_count >= 1

    def test_variant_reuses_restored_subjobs(self, small_data):
        first_session(small_data)
        server, manager = second_session(small_data)
        variant = Q2.replace("SUM", "MAX").replace("OUT", "out/vmax")
        result = server.run(variant)
        fresh = PigServer(small_data).run(
            Q2.replace("SUM", "MAX").replace("OUT", "out/vfresh")
        )
        assert sorted(result.outputs["out/vmax"]) == sorted(
            fresh.outputs["out/vfresh"]
        )
        assert any("group" in e for e in result.rewrites)

    def test_restored_statistics_preserve_ordering(self, small_data):
        _, manager = first_session(small_data)
        order_before = [
            e.entry_id for e in manager.repository.ordered_entries()
        ]
        restored = Repository.from_json(small_data.read_text(REPO_PATH))
        order_after = [e.entry_id for e in restored.ordered_entries()]
        assert order_before == order_after

    def test_eviction_applies_to_restored_entries(self, small_data):
        from repro.core.eviction import InputModifiedEviction

        first_session(small_data)
        repository = Repository.from_json(small_data.read_text(REPO_PATH))
        manager = ReStoreManager(
            small_data,
            repository=repository,
            config=ReStoreConfig(
                eviction_policies=[InputModifiedEviction()]
            ),
        )
        # restored entries own their stored files, as in a live session
        manager.kept_paths.update(e.output_path for e in repository)
        small_data.write_file(
            "data/page_views", "z\t1\t1\t1.0\ti\tl\n", overwrite=True
        )
        small_data.write_file("data/users", "z\tp\ta\tc\n", overwrite=True)
        manager.clock = 1
        evicted = manager.run_evictions()
        assert evicted
        # the cascade clears entries whose inputs were other (now
        # evicted) stored results, transitively
        assert len(manager.repository) == 0
