"""Failure-injection tests for the DFS: crashes, re-replication,
data loss, and the effect on ReStore's stored results."""

import pytest

from repro.dfs.filesystem import DistributedFileSystem
from repro.exceptions import DFSError


def make_dfs(n=4, replication=3):
    return DistributedFileSystem(
        n_datanodes=n, replication=replication, block_size=8
    )


class TestDatanodeCrash:
    def test_reads_survive_single_crash(self):
        dfs = make_dfs()
        dfs.write_file("f", "hello world, this spans blocks")
        dfs.kill_datanode(0)
        assert dfs.read_text("f") == "hello world, this spans blocks"

    def test_reads_survive_two_crashes_with_triple_replication(self):
        dfs = make_dfs(n=5, replication=3)
        dfs.write_file("f", "abcdefghijklmnop")
        dfs.kill_datanode(0)
        dfs.kill_datanode(1)
        assert dfs.read_text("f") == "abcdefghijklmnop"

    def test_kill_unknown_node(self):
        dfs = make_dfs()
        with pytest.raises(DFSError):
            dfs.kill_datanode(99)

    def test_cannot_kill_last_node(self):
        dfs = make_dfs(n=1, replication=1)
        with pytest.raises(DFSError):
            dfs.kill_datanode(0)


class TestRereplication:
    def test_under_replicated_detected_after_crash(self):
        dfs = make_dfs()
        dfs.write_file("f", "0123456789abcdef")
        assert dfs.under_replicated_blocks() == []
        dfs.kill_datanode(0)
        assert len(dfs.under_replicated_blocks()) > 0

    def test_rereplicate_restores_factor(self):
        dfs = make_dfs()
        dfs.write_file("f", "0123456789abcdef")
        dfs.kill_datanode(0)
        created = dfs.rereplicate()
        assert created > 0
        assert dfs.under_replicated_blocks() == []
        assert dfs.read_text("f") == "0123456789abcdef"

    def test_rereplicate_noop_when_healthy(self):
        dfs = make_dfs()
        dfs.write_file("f", "data")
        assert dfs.rereplicate() == 0

    def test_data_loss_detected(self):
        dfs = make_dfs(n=3, replication=1)  # single replica: fragile
        dfs.write_file("f", "x" * 24)
        # kill every node that holds some block: with replication 1 and
        # 3 blocks round-robin placed, killing two nodes loses blocks
        dfs.kill_datanode(0)
        dfs.kill_datanode(1)
        with pytest.raises(DFSError):
            dfs.rereplicate()

    def test_replication_capped_by_cluster_size(self):
        dfs = make_dfs(n=2, replication=3)
        dfs.write_file("f", "abc")
        # only 2 nodes exist: 2 replicas is "fully" replicated
        assert dfs.under_replicated_blocks() == []


class TestReStoreUnderFailures:
    def test_stored_results_survive_crash_and_repair(self, small_data):
        """A repository output stays reusable across a datanode crash
        followed by NameNode re-replication."""
        from repro.core.manager import ReStoreManager
        from repro.pig.engine import PigServer

        manager = ReStoreManager(small_data)
        server = PigServer(small_data, restore=manager)
        query = """
            A = load 'data/page_views' as (user, action:int, timestamp:int,
                est_revenue:double, page_info, page_links);
            B = foreach A generate user, est_revenue;
            D = group B by user;
            E = foreach D generate group, SUM(B.est_revenue);
            store E into 'out/rev';
        """
        fresh = server.run(query).outputs["out/rev"]

        small_data.kill_datanode(0)
        small_data.rereplicate()

        reused = server.run(
            query.replace("out/rev", "out/rev2")
        ).outputs["out/rev2"]
        assert sorted(reused) == sorted(fresh)
