"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def script_and_data(tmp_path):
    data = tmp_path / "views.tsv"
    data.write_text(
        "alice\t1\t100\t1.5\ti\tl\n"
        "bob\t2\t101\t4.0\ti\tl\n"
        "alice\t1\t102\t2.5\ti\tl\n"
    )
    script = tmp_path / "query.pig"
    script.write_text("""
        A = load 'pv' as (user, action:int, timestamp:int,
            est_revenue:double, page_info, page_links);
        D = group A by user;
        E = foreach D generate group, SUM(A.est_revenue);
        store E into 'out';
    """)
    return script, data


class TestRun:
    def test_run_prints_rows(self, script_and_data, capsys):
        script, data = script_and_data
        code = main(["run", str(script), "--data", f"{data}=pv"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alice\t4.0" in out
        assert "bob\t4.0" in out
        assert "simulated time" in out
        assert "repository:" in out

    def test_run_without_restore(self, script_and_data, capsys):
        script, data = script_and_data
        code = main(
            ["run", str(script), "--data", f"{data}=pv", "--no-restore"]
        )
        assert code == 0
        assert "repository:" not in capsys.readouterr().out

    def test_max_rows_truncation(self, script_and_data, capsys):
        script, data = script_and_data
        main(["run", str(script), "--data", f"{data}=pv", "--max-rows", "1"])
        assert "more rows" in capsys.readouterr().out

    def test_bad_data_mapping(self, script_and_data):
        script, _ = script_and_data
        with pytest.raises(SystemExit):
            main(["run", str(script), "--data", "no-equals-sign"])


class TestExplain:
    def test_explain_prints_workflow(self, script_and_data, capsys):
        script, data = script_and_data
        code = main(["explain", str(script), "--data", f"{data}=pv"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MapReduce job(s)" in out
        assert "package group" in out


class TestPluginFlags:
    def test_heuristic_and_selector_flags(self, script_and_data, capsys):
        script, data = script_and_data
        code = main([
            "run", str(script), "--data", f"{data}=pv",
            "--heuristic", "conservative", "--selector", "rules",
        ])
        assert code == 0
        assert "repository:" in capsys.readouterr().out

    def test_evict_flag(self, script_and_data, capsys):
        script, data = script_and_data
        code = main([
            "run", str(script), "--data", f"{data}=pv",
            "--evict", "time-window:2", "--evict", "input-modified",
        ])
        assert code == 0

    def test_unknown_heuristic_lists_valid_names(self, script_and_data, capsys):
        script, data = script_and_data
        code = main([
            "run", str(script), "--data", f"{data}=pv",
            "--heuristic", "bogus",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown heuristic 'bogus'" in err
        assert "aggressive" in err and "conservative" in err

    def test_unknown_selector_lists_valid_names(self, script_and_data, capsys):
        script, data = script_and_data
        code = main([
            "run", str(script), "--data", f"{data}=pv",
            "--selector", "bogus",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown selector 'bogus'" in err
        assert "keep-all" in err and "rules" in err

    def test_unknown_eviction_lists_valid_names(self, script_and_data, capsys):
        script, data = script_and_data
        code = main([
            "explain", str(script), "--data", f"{data}=pv",
            "--evict", "bogus:3",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown eviction policy 'bogus'" in err
        assert "time-window" in err and "capacity" in err


class TestExperiments:
    def test_list(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "ablation-ordering" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_table2_runs(self, capsys):
        assert main(["experiment", "table2", "--rows", "100"]) == 0
        assert "field6" in capsys.readouterr().out

    def test_fig09_tiny(self, capsys):
        assert main(["experiment", "fig09", "--rows", "80"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "paper:" in out


class TestPersistenceFlags:
    def test_second_invocation_starts_warm(self, script_and_data, capsys):
        script, data = script_and_data
        snap = script.parent / "state" / "repo.snapshot"
        args = [
            "run", str(script), "--data", f"{data}=pv",
            "--snapshot", str(snap),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "repository:" in first
        assert snap.exists()
        assert (script.parent / "state" / "repo.snapshot.journal").exists()

        # a brand-new process would see exactly these files; the second
        # invocation recovers the repository and reuses the stored job
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "ReStore rewrites:" in second
        assert "already stored" in second  # whole job eliminated
        assert "0 job(s) executed" in second
        assert "alice\t4.0" in second  # same answer, from stored bytes

    def test_journal_flag_alone_derives_snapshot_path(
        self, script_and_data, capsys
    ):
        script, data = script_and_data
        journal = script.parent / "repo.journal"
        args = [
            "run", str(script), "--data", f"{data}=pv",
            "--journal", str(journal),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert journal.exists()
        assert main(args) == 0
        assert "already stored" in capsys.readouterr().out

    def test_snapshot_requires_restore(self, script_and_data, tmp_path):
        script, data = script_and_data
        with pytest.raises(SystemExit):
            main([
                "run", str(script), "--data", f"{data}=pv", "--no-restore",
                "--snapshot", str(tmp_path / "s"),
            ])
