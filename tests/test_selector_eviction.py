"""Unit tests for keep rules (§5 rules 1-2) and eviction (§5 rules 3-4)."""

import pytest

from repro.core.eviction import (
    CapacityEviction,
    InputModifiedEviction,
    TimeWindowEviction,
)
from repro.core.repository import EntryStats, Repository, RepositoryEntry
from repro.core.selector import KeepAllSelector, RuleBasedSelector
from repro.costmodel.model import CostModel
from repro.dfs.filesystem import DistributedFileSystem
from repro.pig.physical.operators import POFilter, POLoad, POStore
from repro.pig.physical.plan import linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import Schema
from repro.relational.types import DataType

SCHEMA = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))


def entry_with(input_bytes, output_bytes, exec_time=0.0, path="pv",
               output_path="stored/x", created=0, used=0):
    entry = RepositoryEntry(
        plan=linear_plan(
            POLoad(path, SCHEMA),
            POFilter(BinaryOp(">", Column(1), Const(0.5)), schema=SCHEMA),
            POStore(output_path, SCHEMA),
        ),
        output_path=output_path,
        output_schema=SCHEMA,
        stats=EntryStats(
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            exec_time_s=exec_time,
        ),
        created_at=created,
        last_used_at=used,
        input_mtimes={path: 1},
    )
    return entry


class TestSelectors:
    def test_keep_all(self):
        decision = KeepAllSelector().decide(entry_with(10, 1000))
        assert decision.keep

    def test_rule1_rejects_larger_output(self):
        selector = RuleBasedSelector(CostModel())
        decision = selector.decide(entry_with(100, 200))
        assert not decision.keep
        assert "rule 1" in decision.reason

    def test_rule1_accepts_reducing_output(self):
        selector = RuleBasedSelector(CostModel(data_scale=1e6))
        decision = selector.decide(
            entry_with(1_000_000, 1_000, exec_time=500.0)
        )
        assert decision.keep

    def test_rule2_rejects_when_reuse_not_faster(self):
        """Output barely smaller than input and a cheap producing job:
        loading the stored copy cannot beat recomputing."""
        selector = RuleBasedSelector(CostModel(data_scale=1e6))
        decision = selector.decide(
            entry_with(1_000, 999, exec_time=0.01)
        )
        assert not decision.keep

    def test_rule2_reason_mentions_times(self):
        selector = RuleBasedSelector(CostModel())
        decision = selector.decide(entry_with(1_000, 999, exec_time=0.0001))
        assert not decision.keep


class TestTimeWindowEviction:
    def test_stale_entry_evicted(self):
        repo = Repository()
        stale = repo.add(entry_with(100, 10, created=0, used=0))
        fresh = repo.add(
            entry_with(100, 10, output_path="stored/y", created=9, used=9)
        )
        policy = TimeWindowEviction(window=5)
        victims = policy.select_victims(repo, DistributedFileSystem(2), now=10)
        assert victims == [stale]

    def test_recently_used_survives(self):
        repo = Repository()
        entry = repo.add(entry_with(100, 10, created=0, used=8))
        policy = TimeWindowEviction(window=5)
        assert policy.select_victims(repo, DistributedFileSystem(2), 10) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            TimeWindowEviction(0)


class TestInputModifiedEviction:
    def test_deleted_input_evicts(self):
        dfs = DistributedFileSystem(2)
        repo = Repository()
        entry = repo.add(entry_with(100, 10))
        # input path "pv" never written -> counts as deleted
        victims = InputModifiedEviction().select_victims(repo, dfs, 1)
        assert victims == [entry]

    def test_unmodified_input_survives(self):
        dfs = DistributedFileSystem(2)
        dfs.write_file("pv", "row\n")
        repo = Repository()
        entry = entry_with(100, 10)
        entry.input_mtimes = {"pv": dfs.mtime("pv")}
        repo.add(entry)
        assert InputModifiedEviction().select_victims(repo, dfs, 1) == []

    def test_modified_input_evicts(self):
        dfs = DistributedFileSystem(2)
        dfs.write_file("pv", "row\n")
        repo = Repository()
        entry = entry_with(100, 10)
        entry.input_mtimes = {"pv": dfs.mtime("pv")}
        repo.add(entry)
        dfs.write_file("pv", "changed\n", overwrite=True)
        victims = InputModifiedEviction().select_victims(repo, dfs, 1)
        assert victims == [entry]


class TestCapacityEviction:
    def test_under_budget_no_victims(self):
        repo = Repository()
        repo.add(entry_with(100, 10))
        policy = CapacityEviction(capacity_bytes=1000)
        assert policy.select_victims(repo, DistributedFileSystem(2), 1) == []

    def test_lru_evicted_first(self):
        repo = Repository()
        old = repo.add(entry_with(100, 600, used=1))
        new = repo.add(entry_with(100, 600, output_path="stored/y", used=9))
        policy = CapacityEviction(capacity_bytes=1000)
        victims = policy.select_victims(repo, DistributedFileSystem(2), 10)
        assert victims == [old]

    def test_evicts_until_fits(self):
        repo = Repository()
        for i in range(4):
            repo.add(
                entry_with(100, 500, output_path=f"stored/{i}", used=i)
            )
        policy = CapacityEviction(capacity_bytes=1000)
        victims = policy.select_victims(repo, DistributedFileSystem(2), 10)
        assert len(victims) == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CapacityEviction(-1)
