"""Tests for the PigMix substrate: data generation and all queries."""

import pytest

from repro.pig.engine import PigServer
from repro.pigmix.datagen import (
    DECLARED_BYTES,
    PigMixDataGenerator,
)
from repro.pigmix.queries import (
    PIGMIX_QUERY_NAMES,
    VARIANT_NAMES,
    build_query,
)

from tests.conftest import TINY_PIGMIX_CONFIG


class TestDataGenerator:
    def test_deterministic(self):
        gen = PigMixDataGenerator(TINY_PIGMIX_CONFIG)
        assert gen.page_views_rows() == gen.page_views_rows()
        assert gen.users_rows() == gen.users_rows()

    def test_row_counts(self, tiny_pigmix):
        dfs, dataset = tiny_pigmix
        assert len(dfs.read_lines(dataset.paths["page_views"])) == 120
        assert len(dfs.read_lines(dataset.paths["users"])) == 20
        assert len(dfs.read_lines(dataset.paths["power_users"])) == 5
        assert len(dfs.read_lines(dataset.paths["widerow"])) == 40

    def test_page_views_dominates(self, tiny_pigmix):
        _, dataset = tiny_pigmix
        pv = dataset.actual_bytes["page_views"]
        for table in ("users", "power_users", "widerow"):
            assert dataset.actual_bytes[table] < pv

    def test_power_users_subset_of_users(self, tiny_pigmix):
        dfs, dataset = tiny_pigmix
        users = {line.split("\t")[0] for line in dfs.read_lines(dataset.paths["users"])}
        power = {
            line.split("\t")[0] for line in dfs.read_lines(dataset.paths["power_users"])
        }
        assert power <= users

    def test_inactive_users_never_view(self, tiny_pigmix):
        dfs, dataset = tiny_pigmix
        viewers = {
            line.split("\t")[0]
            for line in dfs.read_lines(dataset.paths["page_views"])
        }
        users = [
            line.split("\t")[0] for line in dfs.read_lines(dataset.paths["users"])
        ]
        inactive = users[-TINY_PIGMIX_CONFIG.n_inactive_users :]
        assert all(u not in viewers for u in inactive)

    def test_user_skew(self, tiny_pigmix):
        """Low-id users must be hotter than high-id users."""
        dfs, dataset = tiny_pigmix
        viewers = [
            line.split("\t")[0]
            for line in dfs.read_lines(dataset.paths["page_views"])
        ]
        ids = [int(v.rsplit("_", 1)[1]) for v in viewers]
        low = sum(1 for i in ids if i < 10)
        high = sum(1 for i in ids if i >= 10)
        assert low > high

    def test_data_scale(self, tiny_pigmix):
        _, dataset = tiny_pigmix
        scale = dataset.data_scale("150GB")
        assert scale * dataset.actual_bytes["page_views"] == pytest.approx(
            DECLARED_BYTES["150GB"]
        )
        assert dataset.data_scale("15GB") < scale


class TestQueries:
    @pytest.mark.parametrize("name", PIGMIX_QUERY_NAMES)
    def test_query_compiles(self, tiny_pigmix, name):
        dfs, dataset = tiny_pigmix
        server = PigServer(dfs)
        workflow = server.compile(build_query(name, dataset, f"out/{name}"))
        assert len(workflow.jobs) >= 1

    @pytest.mark.parametrize("name", PIGMIX_QUERY_NAMES)
    def test_query_runs_and_produces_output(self, tiny_pigmix, name):
        dfs, dataset = tiny_pigmix
        server = PigServer(dfs)
        result = server.run(build_query(name, dataset, f"out/{name}"))
        assert f"out/{name}" in result.outputs
        if name != "L5":  # the anti-join may legitimately be empty-ish
            assert len(result.outputs[f"out/{name}"]) > 0

    @pytest.mark.parametrize("name", [v for v in VARIANT_NAMES])
    def test_variants_compile_and_run(self, tiny_pigmix, name):
        dfs, dataset = tiny_pigmix
        server = PigServer(dfs)
        result = server.run(build_query(name, dataset, f"vout/{name}"))
        assert f"vout/{name}" in result.outputs

    def test_l3_is_two_jobs(self, tiny_pigmix):
        dfs, dataset = tiny_pigmix
        workflow = PigServer(dfs).compile(build_query("L3", dataset, "o"))
        assert len(workflow.jobs) == 2

    def test_l11_is_three_jobs(self, tiny_pigmix):
        """§7.1: L11's workflow has 3 jobs, one depending on the others."""
        dfs, dataset = tiny_pigmix
        workflow = PigServer(dfs).compile(build_query("L11", dataset, "o"))
        assert len(workflow.jobs) == 3
        final = [j for j in workflow.jobs if not j.temporary]
        assert len(workflow.dependencies(final[0])) == 2

    def test_l5_returns_inactive_users(self, tiny_pigmix):
        dfs, dataset = tiny_pigmix
        server = PigServer(dfs)
        result = server.run(build_query("L5", dataset, "o5"))
        names = {r[0] for r in result.outputs["o5"]}
        # inactive users are in the answer by construction
        n_users = TINY_PIGMIX_CONFIG.n_users
        inactive = {
            f"user_{i:06d}"
            for i in range(
                n_users - TINY_PIGMIX_CONFIG.n_inactive_users, n_users
            )
        }
        assert inactive <= names

    def test_l8_single_row(self, tiny_pigmix):
        dfs, dataset = tiny_pigmix
        result = PigServer(dfs).run(build_query("L8", dataset, "o8"))
        assert len(result.outputs["o8"]) == 1

    def test_l3_variants_same_groups_different_values(self, tiny_pigmix):
        dfs, dataset = tiny_pigmix
        server = PigServer(dfs)
        sums = dict(server.run(build_query("L3", dataset, "s")).outputs["s"])
        maxes = dict(server.run(build_query("L3c", dataset, "m")).outputs["m"])
        assert set(sums) == set(maxes)
        assert all(sums[k] >= maxes[k] for k in sums)

    def test_unknown_query_rejected(self, tiny_pigmix):
        _, dataset = tiny_pigmix
        with pytest.raises(KeyError):
            build_query("L99", dataset, "o")

    def test_l2_join_is_selective(self, tiny_pigmix):
        dfs, dataset = tiny_pigmix
        result = PigServer(dfs).run(build_query("L2", dataset, "o2"))
        n_pv = TINY_PIGMIX_CONFIG.n_page_views
        assert 0 < len(result.outputs["o2"]) < n_pv
