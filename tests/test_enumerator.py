"""Unit tests for sub-job enumeration and Store injection (paper §4)."""

from repro.core.enumerator import SubJobEnumerator
from repro.core.heuristics import (
    AggressiveHeuristic,
    ConservativeHeuristic,
    NoHeuristic,
)
from repro.pig.engine import PigServer
from repro.pig.physical.operators import POSplit, POStore

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"

L2ISH = f"""
A = load 'data/page_views' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load 'data/users' as ({USERS});
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'out';
"""


def compile_job(server, source=L2ISH):
    return server.compile(source).jobs[0]


class TestInjection:
    def test_conservative_injects_two_project_stores(self, server):
        job = compile_job(server)
        candidates = SubJobEnumerator(ConservativeHeuristic()).enumerate_and_inject(job)
        assert len(candidates) == 2
        assert all(c.anchor_kind == "project" for c in candidates)
        assert len(job.plan.side_stores()) == 2

    def test_aggressive_skips_store_fed_anchor(self, server):
        """The join flatten feeds the primary Store directly: its output
        is already stored, so HA must not double-store it."""
        job = compile_job(server)
        candidates = SubJobEnumerator(AggressiveHeuristic()).enumerate_and_inject(job)
        assert all(c.anchor_kind != "join" for c in candidates)
        assert len(candidates) == 2  # just the projections

    def test_aggressive_stores_group_output(self, server):
        job = compile_job(server, f"""
            A = load 'data/page_views' as ({PV});
            D = group A by user;
            E = foreach D generate group, COUNT(A);
            store E into 'out';
        """)
        candidates = SubJobEnumerator(AggressiveHeuristic()).enumerate_and_inject(job)
        kinds = sorted(c.anchor_kind for c in candidates)
        assert "group" in kinds

    def test_tee_structure(self, server):
        job = compile_job(server)
        SubJobEnumerator(ConservativeHeuristic()).enumerate_and_inject(job)
        job.validate()
        splits = [op for op in job.plan if isinstance(op, POSplit)]
        assert len(splits) == 2
        for split in splits:
            succs = job.plan.successors(split)
            assert any(isinstance(s, POStore) and s.side for s in succs)
            assert any(not isinstance(s, POStore) for s in succs)

    def test_no_heuristic_reuses_tee(self, server):
        """Multiple stores at the same operator share one Split."""
        job = compile_job(server)
        SubJobEnumerator(NoHeuristic()).enumerate_and_inject(job)
        job.validate()

    def test_unique_store_paths(self, server):
        job = compile_job(server)
        candidates = SubJobEnumerator(AggressiveHeuristic()).enumerate_and_inject(job)
        paths = [c.store_path for c in candidates]
        assert len(paths) == len(set(paths))


class TestCandidatePlans:
    def test_candidate_plan_is_standalone(self, server):
        job = compile_job(server)
        candidates = SubJobEnumerator(ConservativeHeuristic()).enumerate_and_inject(job)
        for candidate in candidates:
            candidate.plan.validate()
            # a clean load -> project -> store job, no instrumentation
            kinds = sorted(op.kind for op in candidate.plan)
            assert kinds == ["foreach", "load", "store"]

    def test_candidate_plan_free_of_splits(self, server):
        job = compile_job(server)
        candidates = SubJobEnumerator(NoHeuristic()).enumerate_and_inject(job)
        for candidate in candidates:
            assert not any(isinstance(op, POSplit) for op in candidate.plan)

    def test_candidate_schema_matches_anchor(self, server):
        job = compile_job(server)
        candidates = SubJobEnumerator(ConservativeHeuristic()).enumerate_and_inject(job)
        for candidate in candidates:
            assert len(candidate.output_schema) >= 1

    def test_candidate_matches_fresh_plan(self, server):
        """The extracted sub-job must be matchable against a fresh
        compilation of the same query — the §4 'indistinguishable from
        other jobs in the repository' property."""
        from repro.core.matcher import PlanMatcher

        job = compile_job(server)
        candidates = SubJobEnumerator(ConservativeHeuristic()).enumerate_and_inject(job)
        fresh = compile_job(server)  # identical query, fresh plan
        matcher = PlanMatcher()
        for candidate in candidates:
            assert matcher.match(fresh.plan, candidate.plan) is not None

    def test_execution_unchanged_by_injection(self, server, small_data):
        """Injection is semantically transparent: same final output."""
        plain = PigServer(small_data).run(L2ISH.replace("'out'", "'out_plain'"))
        job_server = PigServer(small_data)
        workflow = job_server.compile(L2ISH.replace("'out'", "'out_inj'"))
        for job in workflow.jobs:
            SubJobEnumerator(AggressiveHeuristic()).enumerate_and_inject(job)
        injected = job_server.run_workflow(workflow)
        assert sorted(plain.outputs["out_plain"]) == sorted(
            injected.outputs["out_inj"]
        )

    def test_side_store_written(self, server, small_data):
        workflow = server.compile(L2ISH.replace("'out'", "'out2'"))
        job = workflow.jobs[0]
        candidates = SubJobEnumerator(ConservativeHeuristic()).enumerate_and_inject(job)
        server.run_workflow(workflow)
        for candidate in candidates:
            assert small_data.exists(candidate.store_path)
            assert small_data.file_size(candidate.store_path) > 0


class TestAnchorTwinMapping:
    """The anchor's clone comes from subplan_upto_mapped's op-id
    mapping, never from scanning sinks for a matching signature."""

    @staticmethod
    def _duplicated_filter_job():
        """load -> filter(a>5) -> project -> filter(a>5) -> store,
        built physically so the optimizer cannot merge the equal
        filters (the compiler would)."""
        from repro.mapreduce.job import MapReduceJob
        from repro.pig.physical.operators import POFilter, POForEach, POLoad
        from repro.pig.physical.plan import linear_plan
        from repro.relational.expressions import BinaryOp, Column, Const
        from repro.relational.schema import Schema
        from repro.relational.types import DataType

        schema = Schema.of(
            ("u", DataType.CHARARRAY),
            ("a", DataType.INT),
            ("r", DataType.DOUBLE),
        )
        predicate = lambda: BinaryOp(">", Column(1), Const(5))  # noqa: E731
        def project():
            return POForEach(
                [Column(0), Column(1), Column(2)],
                [False] * 3,
                ["u", "a", "r"],
                schema=schema,
            )

        plan = linear_plan(
            POLoad("data/ev", schema),
            POFilter(predicate(), schema=schema),
            project(),
            POFilter(predicate(), schema=schema),
            project(),
            POStore("out", schema=schema),
        )
        return MapReduceJob(plan, job_id="dup_filters")

    def test_equal_signature_operators_get_distinct_twins(self):
        from repro.pig.physical.operators import POFilter

        job = self._duplicated_filter_job()
        plan = job.plan
        first, second = [
            op for op in plan.topo_order() if isinstance(op, POFilter)
        ]
        assert first.signature() == second.signature()  # the ambiguous case
        enumerator = SubJobEnumerator(ConservativeHeuristic())
        candidates = enumerator.enumerate_and_inject(job)
        by_len = sorted(len(c.plan) for c in candidates)
        # the shallow filter's candidate stops at depth 3 (load ->
        # filter -> store); the deep filter's candidate carries the
        # whole equal-signature prefix and anchors at ITS clone, not
        # an arbitrary same-signature twin
        assert by_len == [3, 4, 5]

    def test_subplan_upto_mapped_returns_the_anchors_clone(self):
        job = self._duplicated_filter_job()
        plan = job.plan
        for anchor in plan.topo_order():
            if isinstance(anchor, (POSplit, POStore)):
                continue
            sub_plan, mapping = plan.subplan_upto_mapped(anchor)
            twin = mapping[anchor.op_id]
            assert twin in sub_plan
            assert twin.signature() == anchor.signature()
            assert sub_plan.successors(twin) == []  # the extraction sink

    def test_contracted_split_maps_to_its_predecessor(self, server):
        job = compile_job(server)
        enumerator = SubJobEnumerator(AggressiveHeuristic())
        enumerator.enumerate_and_inject(job)  # splices tees into the plan
        plan = job.plan
        tees = [op for op in plan.operators if isinstance(op, POSplit)]
        assert tees
        tee = tees[0]
        anchor = plan.predecessors(tee)[0]
        sub_plan, mapping = plan.subplan_upto_mapped(tee)
        # the tee contracts away in the clone; its mapping entry is the
        # operator that absorbed the edge (the anchor's twin)
        assert mapping[tee.op_id] is mapping[anchor.op_id]
