"""Unit tests for the DFS typed-dataset cache (the zero-copy data plane).

Covers: pinning on write, cache hits returning the pinned rows without
parsing, counter parity with the text path, generation-based
invalidation on append/delete/rename/overwrite, canonicality gating
(non-round-trippable rows are never pinned), schema-keyed slots, lazy
text materialization, and replica block sharing.
"""

import pytest

from repro.dfs.dataset import TypedDataset, canonical_ascii_size, rows_are_canonical
from repro.dfs.filesystem import DistributedFileSystem
from repro.relational.schema import FieldSchema, Schema
from repro.relational.tuples import Bag, serialize_rows
from repro.relational.types import DataType

SCHEMA = Schema.of(
    ("u", DataType.CHARARRAY), ("a", DataType.INT), ("r", DataType.DOUBLE)
)
ROWS = (("alice", 1, 0.5), ("bob", 2, 4.5), (None, None, None))


@pytest.fixture
def dfs():
    return DistributedFileSystem(n_datanodes=3, block_size=64)


class TestWriteReadRows:
    def test_round_trip(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        assert dfs.read_rows("f", SCHEMA) == ROWS

    def test_cache_hit_returns_pinned_rows(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        first = dfs.read_rows("f", SCHEMA)
        second = dfs.read_rows("f", SCHEMA)
        assert first is second  # no re-parse, the pinned tuple itself

    def test_bytes_are_source_of_truth(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        assert dfs.read_file("f") == serialize_rows(ROWS).encode()

    def test_text_write_then_read_rows_fills_cache(self, dfs):
        dfs.write_file("f", serialize_rows(ROWS))
        first = dfs.read_rows("f", SCHEMA)
        second = dfs.read_rows("f", SCHEMA)
        assert first == ROWS
        assert first is second

    def test_schema_none_writes_plain_text(self, dfs):
        dfs.write_rows("f", ROWS)
        assert dfs.read_file("f") == serialize_rows(ROWS).encode()

    def test_empty_rows(self, dfs):
        dfs.write_rows("f", (), SCHEMA)
        assert dfs.read_file("f") == b""
        assert dfs.read_rows("f", SCHEMA) == ()

    def test_multi_block_file(self, dfs):
        rows = tuple((f"user{i:04d}", i, i / 2.0) for i in range(50))
        dfs.write_rows("f", rows, SCHEMA)
        assert dfs.n_blocks("f") > 1
        assert dfs.read_rows("f", SCHEMA) == rows
        assert dfs.read_file("f") == serialize_rows(rows).encode()


class TestCounterParity:
    """Every counter must move exactly as the text path moves it."""

    def _text_twin(self):
        twin = DistributedFileSystem(n_datanodes=3, block_size=64)
        twin.write_file("f", serialize_rows(ROWS))
        return twin

    def test_write_counters_identical(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        twin = self._text_twin()
        assert dfs.bytes_written == twin.bytes_written
        assert dfs.replica_bytes_written == twin.replica_bytes_written
        assert dfs.file_size("f") == twin.file_size("f")
        assert dfs.n_blocks("f") == twin.n_blocks("f")

    def test_cached_read_counters_identical(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        twin = self._text_twin()
        dfs.read_rows("f", SCHEMA)  # cache hit: no bytes materialized
        twin.read_file("f")
        assert dfs.bytes_read == twin.bytes_read
        per_node = [n.bytes_read for n in dfs.datanodes]
        twin_per_node = [n.bytes_read for n in twin.datanodes]
        assert per_node == twin_per_node


class TestInvalidation:
    def test_append_invalidates(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        pinned = dfs.read_rows("f", SCHEMA)
        dfs.append("f", "carol\t3\t9.0\n")
        rows = dfs.read_rows("f", SCHEMA)
        assert rows is not pinned
        assert rows == ROWS + (("carol", 3, 9.0),)

    def test_overwrite_invalidates(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        dfs.write_rows("f", ROWS[:1], SCHEMA, overwrite=True)
        assert dfs.read_rows("f", SCHEMA) == ROWS[:1]

    def test_rename_invalidates(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        dfs.rename("f", "g")
        assert dfs.read_rows("g", SCHEMA) == ROWS

    def test_delete_then_rewrite(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        dfs.delete("f")
        dfs.write_file("f", "x\t7\t1.5\n")
        assert dfs.read_rows("f", SCHEMA) == (("x", 7, 1.5),)

    def test_generation_bumps(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        inode = dfs.namenode.lookup("f")
        generation = inode.generation
        dfs.append("f", "carol\t3\t9.0\n")
        assert inode.generation > generation
        assert inode.datasets == {}


class TestCanonicalityGate:
    def test_int_in_double_column_not_pinned(self, dfs):
        # 3 re-parses as 3.0: pinning would diverge from the text path
        dfs.write_rows("f", (("alice", 1, 3),), SCHEMA)
        assert dfs.read_rows("f", SCHEMA) == (("alice", 1, 3.0),)

    def test_empty_string_not_pinned(self, dfs):
        dfs.write_rows("f", (("", 1, 0.5),), SCHEMA)
        assert dfs.read_rows("f", SCHEMA) == ((None, 1, 0.5),)

    def test_tab_in_string_not_pinned(self, dfs):
        schema = Schema.of(
            ("x", DataType.CHARARRAY),
            ("y", DataType.CHARARRAY),
            ("z", DataType.CHARARRAY),
        )
        dfs.write_rows("f", (("a\tb", "x", "y"),), schema)
        # the embedded tab shifts field splitting; readers see the text truth
        assert dfs.read_rows("f", schema) == (("a", "b", "x"),)

    def test_bool_in_int_column_not_pinned(self, dfs):
        schema = Schema.of(("flag", DataType.INT))
        dfs.write_rows("f", ((True,),), schema)
        # "true" cannot parse as int: the reader sees the text truth
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            dfs.read_rows("f", schema)

    def test_non_ascii_rows_still_pinned(self, dfs):
        rows = (("héllo", 1, 0.5),)
        dfs.write_rows("f", rows, SCHEMA)
        assert dfs.read_rows("f", SCHEMA) is dfs.read_rows("f", SCHEMA)
        assert dfs.read_file("f") == serialize_rows(rows).encode()
        assert dfs.file_size("f") == len(serialize_rows(rows).encode())

    def test_schema_mismatch_parses_under_that_schema(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        loose = Schema.of(("u", DataType.CHARARRAY), ("a", DataType.CHARARRAY))
        assert dfs.read_rows("f", loose)[0] == ("alice", "1")
        # the original pin survives alongside the new one
        assert dfs.read_rows("f", SCHEMA) == ROWS


class TestBagRows:
    INNER = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))
    GROUPED = Schema(
        (
            FieldSchema("group", DataType.CHARARRAY),
            FieldSchema("items", DataType.BAG, INNER),
        )
    )

    def test_bag_rows_pinned_and_round_trip(self, dfs):
        rows = (
            ("a", Bag([("x", 1.5), ("y", 2.5)])),
            ("b", Bag([])),
            ("c", None),
        )
        dfs.write_rows("f", rows, self.GROUPED)
        assert dfs.read_rows("f", self.GROUPED) is dfs.read_rows("f", self.GROUPED)
        # the text path sees exactly the same data
        from repro.relational.tuples import deserialize_rows

        assert tuple(deserialize_rows(dfs.read_text("f"), self.GROUPED)) == rows

    def test_write_rows_snapshots_bags_at_call_time(self, dfs):
        """Mutating a Bag after write_rows returns must not corrupt
        the deferred serialization or the pinned dataset — write_file
        snapshotted bytes at call time, write_rows must match."""
        bag = Bag([("x", 1.0)])
        dfs.write_rows("f", (("k", bag),), self.GROUPED)
        expected = serialize_rows((("k", Bag([("x", 1.0)])),))
        bag.append(("y", 2.0))
        assert dfs.read_rows("f", self.GROUPED) == (("k", Bag([("x", 1.0)])),)
        assert dfs.read_file("f") == expected.encode()
        assert dfs.file_size("f") == len(expected.encode())

    def test_bag_with_comma_string_not_pinned(self, dfs):
        from repro.exceptions import SchemaError

        rows = (("a", Bag([("x,y", 1.5)])),)
        assert not rows_are_canonical(rows, self.GROUPED)
        dfs.write_rows("f", rows, self.GROUPED)
        # the comma shifts the nested split on re-parse; readers must
        # see the text truth (here: a field that no longer casts)
        with pytest.raises(SchemaError):
            dfs.read_rows("f", self.GROUPED)


class TestLazyMaterialization:
    def test_blocks_stay_unmaterialized_until_byte_read(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        inode = dfs.namenode.lookup("f")
        blocks = [
            node.get_block(block_id)
            for block_id in inode.block_ids
            for node in dfs.datanodes
            if node.has_block(block_id)
        ]
        assert blocks and not any(b.materialized for b in blocks)
        dfs.read_rows("f", SCHEMA)  # cache hit: still no bytes
        assert not any(b.materialized for b in blocks)
        dfs.read_file("f")  # a genuine byte read builds the text
        assert all(b.materialized for b in blocks)

    def test_replicas_share_one_block_object(self, dfs):
        dfs.write_rows("f", ROWS, SCHEMA)
        inode = dfs.namenode.lookup("f")
        for block_id in inode.block_ids:
            replicas = [
                node.get_block(block_id)
                for node in dfs.datanodes
                if node.has_block(block_id)
            ]
            assert len(replicas) == dfs.replication
            assert all(b is replicas[0] for b in replicas)

    def test_rereplication_shares_blocks(self):
        dfs = DistributedFileSystem(n_datanodes=4, replication=3, block_size=64)
        dfs.write_rows("f", ROWS, SCHEMA)
        dfs.kill_datanode(0)
        dfs.rereplicate()
        assert dfs.read_file("f") == serialize_rows(ROWS).encode()
        inode = dfs.namenode.lookup("f")
        for block_id in inode.block_ids:
            replicas = [
                node.get_block(block_id)
                for node in dfs.datanodes
                if node.has_block(block_id)
            ]
            assert all(b is replicas[0] for b in replicas)


class TestCanonicalHelpers:
    def test_size_matches_encoded_text(self):
        rows = (("alice", 1, 0.5), (None, None, None), ("bob", -3, 2.25))
        size = canonical_ascii_size(rows, SCHEMA)
        assert size == len(serialize_rows(rows).encode())

    def test_size_none_for_non_ascii(self):
        assert canonical_ascii_size((("héllo", 1, 0.5),), SCHEMA) is None

    def test_size_none_for_non_canonical(self):
        assert canonical_ascii_size((("a", 1, 3),), SCHEMA) is None

    def test_canonical_accepts_round_trippable(self):
        assert rows_are_canonical(ROWS, SCHEMA)

    def test_canonical_rejects_nan(self):
        assert not rows_are_canonical((("a", 1, float("nan")),), SCHEMA)

    def test_dataset_repr(self):
        dataset = TypedDataset(ROWS, SCHEMA.fingerprint(), 0)
        assert "rows=3" in repr(dataset)
        assert len(dataset) == 3


class TestColumnarSizerParity:
    """The columnar write sizer must agree with the per-row closures
    on every input — including the ASCII separator characters
    \\x1c-\\x1f, which str.strip() treats as whitespace."""

    def test_separator_whitespace_is_strip_unstable_in_bags(self):
        from repro.dfs.dataset import _columnar_sizer, _row_sizer, _FALLBACK
        from repro.relational.schema import Schema
        from repro.relational.types import DataType
        from repro.relational.tuples import Bag

        inner = Schema.of(("s", DataType.CHARARRAY))
        schema = Schema.of(
            ("g", DataType.CHARARRAY), ("b", DataType.BAG, inner)
        )
        closure = _row_sizer(schema)
        columnar = _columnar_sizer(schema)
        for ch in "\x1c\x1d\x1e\x1f \r\x0b\x0c":
            for value in (f"a{ch}", f"{ch}a"):
                rows = [(f"u{i}", Bag([(value,)])) for i in range(70)]
                want = closure(rows)
                got = columnar(rows)
                assert want is None, (ch, value)  # strip-unstable
                assert got is None, (ch, value)
        # interior separators are strip-stable and must still size
        rows = [(f"u{i}", Bag([("a\x1cb",)])) for i in range(70)]
        want, got = closure(rows), columnar(rows)
        assert got is not _FALLBACK
        assert want == got is not None

    def test_write_rows_never_pins_divergent_strip_unstable_bags(self):
        from repro.dfs.filesystem import DistributedFileSystem
        from repro.relational.schema import Schema
        from repro.relational.types import DataType
        from repro.relational.tuples import Bag, deserialize_rows

        inner = Schema.of(("s", DataType.CHARARRAY))
        schema = Schema.of(
            ("g", DataType.CHARARRAY), ("b", DataType.BAG, inner)
        )
        rows = [(f"u{i}", Bag([("a\x1c",)])) for i in range(70)]
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_rows("f", rows, schema)
        cached = dfs.read_rows("f", schema)
        reparsed = deserialize_rows(dfs.read_text("f"), schema)
        assert list(cached) == reparsed  # cached and text reads agree
