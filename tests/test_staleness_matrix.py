"""The staleness differential matrix.

Every input-mutation scenario (fresh / append / overwrite /
delete-recreate / delete) crossed with every execution mode (serial
engine, 1-worker job service, persistence warm restart) must land on
the same bytes a no-reuse oracle computes over the final input state —
reuse may only change *cost*, never *answers*.  The delete cell
asserts the same failure as the oracle: a missing input is an error in
both worlds, not a stale answer in one."""

from __future__ import annotations

import pytest

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.exceptions import FileNotFoundInDFS
from repro.persistence.durability import (
    PersistenceConfig,
    RepositoryPersister,
    recover,
)
from repro.pig.engine import PigServer
from repro.service import JobService

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"

PROBE = f"""
A = load 'data/page_views' as ({PV});
B = filter A by action == 1;
store B into 'm_out';
"""

BASE_ROWS = (
    "alice\t1\t100\t1.5\tinfoA\tlinksA\n"
    "bob\t2\t101\t2.5\tinfoB\tlinksB\n"
    "carol\t1\t102\t4.0\tinfoC\tlinksC\n"
)
TAIL_ROWS = "dave\t1\t105\t3.0\tinfoF\tlinksF\n"
REPLACEMENT_ROWS = (
    "zed\t1\t200\t9.0\tinfoZ\tlinksZ\nyan\t2\t201\t1.0\tinfoY\tlinksY\n"
)

SCENARIOS = ("fresh", "append", "overwrite", "delete_recreate", "delete")


def fresh_dfs() -> DistributedFileSystem:
    dfs = DistributedFileSystem(n_datanodes=4, block_size=4 * 1024)
    dfs.write_file("data/page_views", BASE_ROWS)
    return dfs


def mutate(dfs: DistributedFileSystem, scenario: str) -> None:
    """Apply one matrix scenario to the input between the two probes."""
    if scenario == "fresh":
        return
    if scenario == "append":
        dfs.append("data/page_views", TAIL_ROWS)
    elif scenario == "overwrite":
        dfs.write_file("data/page_views", REPLACEMENT_ROWS, overwrite=True)
    elif scenario == "delete_recreate":
        dfs.delete("data/page_views")
        dfs.write_file("data/page_views", REPLACEMENT_ROWS)
    elif scenario == "delete":
        dfs.delete("data/page_views")
    else:  # pragma: no cover - scenario list and impls must stay in sync
        raise AssertionError(scenario)


def outcome(run) -> tuple:
    """("ok", output bytes) or ("error", exception type) — the shape
    compared across the matrix, so the delete cell can demand the
    *same* failure from both worlds."""
    try:
        return ("ok", run())
    except FileNotFoundInDFS:
        return ("error", "FileNotFoundInDFS")


def oracle_outcome(scenario: str) -> tuple:
    """The no-reuse answer over the final input state."""
    dfs = fresh_dfs()
    mutate(dfs, scenario)

    def run():
        PigServer(dfs).run(PROBE)
        return dfs.read_file("m_out")

    return outcome(run)


def serial_outcome(scenario: str) -> tuple:
    dfs = fresh_dfs()
    manager = ReStoreManager(dfs)
    server = PigServer(dfs, restore=manager)
    server.run(PROBE)
    mutate(dfs, scenario)

    def run():
        server.run(PROBE)
        return dfs.read_file("m_out")

    return outcome(run)


def service_outcome(scenario: str) -> tuple:
    service = JobService(
        datanodes=4,
        config=ReStoreConfig(inject_enabled=False),
        max_workers=1,
    )
    try:
        service.dfs.write_file("data/page_views", BASE_ROWS)
        session = service.open_session("tenant")
        session.run(PROBE)
        mutate(service.dfs, scenario)

        def run():
            session.run(PROBE)
            return service.dfs.read_file("m_out")

        return outcome(run)
    finally:
        service.shutdown()


def warm_restart_outcome(scenario: str) -> tuple:
    config = PersistenceConfig()
    dfs = fresh_dfs()
    manager = ReStoreManager(dfs)
    persister = RepositoryPersister(manager, config)
    PigServer(dfs, restore=manager).run(PROBE)
    persister.close(snapshot=True)

    mutate(dfs, scenario)

    recovered = recover(config, dfs)
    warm = ReStoreManager(dfs, repository=recovered.repository)
    warm.kept_paths.update(recovered.kept_paths)
    warm.kept_paths.update(
        e.output_path for e in recovered.repository.entries()
    )
    warm.clock = max(warm.clock, recovered.clock)
    server = PigServer(dfs, restore=warm)

    def run():
        server.run(PROBE)
        return dfs.read_file("m_out")

    return outcome(run)


MODES = {
    "serial": serial_outcome,
    "service": service_outcome,
    "warm_restart": warm_restart_outcome,
}


class TestStalenessMatrix:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_cell_matches_no_reuse_oracle(self, mode, scenario):
        assert MODES[mode](scenario) == oracle_outcome(scenario)

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_delete_cell_fails_like_the_oracle(self, mode):
        # spelled out separately so a regression that silently serves
        # stale bytes for a deleted input reads as what it is
        kind, detail = MODES[mode]("delete")
        assert (kind, detail) == ("error", "FileNotFoundInDFS")
