"""Crash recovery through the append-only journal.

The framing contract: a crash can tear the journal at *any* byte, and
recovery must replay every record before the tear, drop the tear
without guessing, and converge to the same state no matter how many
times the same records are replayed.
"""

from __future__ import annotations

import pytest

from repro.bench.repo_scale import build_repository, generate_entry_specs
from repro.core.manager import ReStoreManager
from repro.core.repository import Repository
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.namenode import InputExtent
from repro.persistence.durability import (
    PersistenceConfig,
    ReplayTarget,
    RepositoryPersister,
    recover,
)
from repro.persistence.journal import (
    Journal,
    JournalRecord,
    decode_journal,
    encode_record,
)
from repro.persistence.snapshot import RepositorySnapshot, entry_record
from repro.persistence.storage import LocalStorage


def _payloads():
    return [
        {"type": "kept_path_added", "path": "tmp/s1/sj1"},
        {"type": "kept_path_added", "path": "tmp/s1/sj2"},
        {"type": "counters", "next_script_id": 5, "next_subjob_id": 9},
    ]


FRAMES = [encode_record(p) for p in _payloads()]
LAST = FRAMES[-1]


class TestTornTail:
    @pytest.mark.parametrize("cut", range(len(LAST)))
    def test_every_byte_boundary_of_last_record(self, cut):
        """Tear the last record at byte *cut*: the two intact records
        always survive; the tail is torn except at cut == 0 (a clean
        boundary, nothing lost)."""
        data = b"".join(FRAMES[:-1]) + LAST[:cut]
        scan = decode_journal(data)
        assert len(scan.records) == 2
        assert scan.clean_bytes == len(FRAMES[0]) + len(FRAMES[1])
        assert scan.torn == (cut > 0)
        assert scan.torn_bytes == cut

    def test_corrupted_checksum_stops_scan(self):
        data = bytearray(b"".join(FRAMES))
        data[-2] ^= 0xFF  # flip a bit inside the last payload
        scan = decode_journal(bytes(data))
        assert len(scan.records) == 2
        assert scan.torn

    def test_torn_middle_censors_the_rest(self):
        # appends never rewrite earlier bytes, so a tear can only be at
        # the tail — but if bytes *were* lost mid-file, everything
        # after the damage must be dropped, never resynchronized
        data = FRAMES[0] + FRAMES[1][:-3] + FRAMES[2]
        scan = decode_journal(data)
        assert len(scan.records) == 1

    def test_repair_truncates_in_place(self, tmp_path):
        path = tmp_path / "wal"
        path.write_bytes(b"".join(FRAMES) + LAST[:7])
        journal = Journal(LocalStorage(str(path)))
        dropped = journal.repair()
        assert dropped == 7
        rescan = journal.scan()
        assert not rescan.torn
        assert len(rescan.records) == 3
        # the repaired journal appends cleanly at the record boundary
        journal.append_payloads([{"type": "kept_path_removed", "path": "x"}])
        assert len(journal.scan().records) == 4


class TestReplaySemantics:
    def test_replay_twice_equals_replay_once(self):
        repo = build_repository(generate_entry_specs(8, seed=3), seed=3)
        repo.ordered_entries()
        snapshot = RepositorySnapshot.capture(repo)
        victim = repo.entries()[2]
        records = [
            JournalRecord.from_payload(
                {"type": "entry_added", "entry": entry_record(victim)}
            ),
            JournalRecord.from_payload(
                {"type": "entry_removed", "entry_id": victim.entry_id}
            ),
            JournalRecord.from_payload(
                {
                    "type": "entry_used",
                    "entry_id": repo.entries()[0].entry_id,
                    "use_count": 3,
                    "last_used_at": 11,
                    "clock": 11,
                }
            ),
        ]
        once = Repository.restore(snapshot, journal=records)
        twice = Repository.restore(snapshot, journal=records + records)
        assert [e.entry_id for e in once.ordered_entries()] == [
            e.entry_id for e in twice.ordered_entries()
        ]
        assert not once.has_entry(victim.entry_id)
        assert not twice.has_entry(victim.entry_id)
        used = twice.get(repo.entries()[0].entry_id)
        assert used.use_count == 3  # max-merge, not double-count
        assert used.last_used_at == 11

    def test_same_id_readd_keeps_scan_position(self):
        repo = build_repository(generate_entry_specs(8, seed=3), seed=3)
        repo.ordered_entries()
        snapshot = RepositorySnapshot.capture(repo)
        order = [e.entry_id for e in repo.ordered_entries()]
        readd = JournalRecord.from_payload(
            {"type": "entry_added", "entry": entry_record(repo.entries()[4])}
        )
        restored = Repository.restore(snapshot, journal=[readd])
        assert [e.entry_id for e in restored.ordered_entries()] == order

    def test_unknown_record_types_are_skipped(self):
        target = ReplayTarget(Repository())
        target.apply(JournalRecord(type="from_the_future", data={"x": 1}))
        assert len(target.repository) == 0

    def test_entry_refreshed_replaces_in_place(self):
        """A delta refresh journals the full post-merge entry; replay
        must update the existing entry (same id, new extents/stats)
        without duplicating it or disturbing the scan order."""
        repo = build_repository(generate_entry_specs(8, seed=3), seed=3)
        order = [e.entry_id for e in repo.ordered_entries()]
        snapshot = RepositorySnapshot.capture(repo)
        entry = repo.entries()[2]
        record = entry_record(entry)
        record["input_extents"] = {"data/pv": [4, 0, 2, 64, 123]}
        refreshed = JournalRecord.from_payload(
            {"type": "entry_refreshed", "entry": record}
        )
        restored = Repository.restore(
            snapshot, journal=[refreshed, refreshed]
        )
        assert len(restored) == len(repo)
        assert [e.entry_id for e in restored.ordered_entries()] == order
        twin = restored.get(entry.entry_id)
        assert twin.input_extents == {
            "data/pv": InputExtent(
                mtime=4, generation=0, birth=2, size=64, crc=123
            )
        }


class TestLivePersisterCrash:
    """End-to-end: a real persister journals mutations; a crash is a
    byte-level truncation of what it wrote; recovery converges."""

    def _manager(self, tmp_path):
        dfs = DistributedFileSystem(n_datanodes=2)
        config = PersistenceConfig(
            snapshot_path=str(tmp_path / "repo.snap"),
            journal_path=str(tmp_path / "repo.journal"),
            backend="local",
        )
        manager = ReStoreManager(dfs)
        persister = RepositoryPersister(manager, config)
        return dfs, config, manager, persister

    def _entries(self, n=3):
        repo = build_repository(generate_entry_specs(n, seed=5), seed=5)
        return repo.entries()

    def _add(self, dfs, manager, entries):
        """Register entries the way a live run does: the output bytes
        land in the DFS first, so the persister captures them into the
        block store and the recovery scrub can verify (and restore)
        them instead of condemning ref-less entries."""
        added = []
        for entry in entries:
            dfs.write_file(
                entry.output_path, f"bytes:{entry.output_path}".encode()
            )
            added.append(manager.repository.add(entry))
        return added

    def test_eviction_journaled_then_crash_replays_the_eviction(
        self, tmp_path
    ):
        dfs, config, manager, persister = self._manager(tmp_path)
        added = self._add(dfs, manager, self._entries())
        manager.repository.remove(added[1].entry_id)
        # crash now: no close(), no snapshot — the journal alone must
        # carry three adds and one remove
        fresh = DistributedFileSystem(n_datanodes=2)
        recovered = recover(config, fresh)
        assert len(recovered.repository) == 2
        assert not recovered.repository.has_entry(added[1].entry_id)
        assert recovered.journal_torn_bytes == 0
        assert recovered.payloads_condemned == []
        # surviving entries came back with byte-identical outputs,
        # restored natively from the block store
        for entry in recovered.repository.entries():
            assert fresh.read_file(entry.output_path) == dfs.read_file(
                entry.output_path
            )

    def test_eviction_record_torn_means_entry_survives(self, tmp_path):
        dfs, config, manager, persister = self._manager(tmp_path)
        added = self._add(dfs, manager, self._entries())
        journal_path = tmp_path / "repo.journal"
        before = len(journal_path.read_bytes())
        manager.repository.remove(added[1].entry_id)
        after = journal_path.read_bytes()
        # tear the eviction record mid-frame, as a crash mid-flush would
        journal_path.write_bytes(after[: before + (len(after) - before) // 2])
        recovered = recover(config, DistributedFileSystem(n_datanodes=2))
        # the add was durable, the eviction wasn't: the entry is back,
        # which is safe (its stored file was never deleted first — the
        # manager removes the entry before the file)
        assert recovered.repository.has_entry(added[1].entry_id)
        assert len(recovered.repository) == 3
        assert recovered.journal_torn_bytes > 0
        # recovery repaired the tear in place: a rescan is clean
        assert not Journal(config.journal_storage()).scan().torn

    def test_recovery_after_snapshot_rotation_plus_tail(self, tmp_path):
        dfs, config, manager, persister = self._manager(tmp_path)
        entries = self._entries(4)
        self._add(dfs, manager, entries[:2])
        persister.take_snapshot()
        self._add(dfs, manager, entries[2:])
        recovered = recover(config, DistributedFileSystem(n_datanodes=2))
        assert len(recovered.repository) == 4
        assert recovered.snapshot_entries == 2
        # post-rotation journal: per add, one payload_stored record
        # (the block-store segment ref) + the entry_added record
        assert recovered.journal_records == 4

    def test_counters_record_restores_dfs_floors(self, tmp_path):
        dfs, config, manager, persister = self._manager(tmp_path)
        manager.repository.add(self._entries(1)[0])
        for _ in range(6):
            dfs.next_script_id()
        for _ in range(9):
            dfs.next_subjob_id()
        manager.clock = 3
        persister.note_workflow_end()  # journals the moved counters
        fresh = DistributedFileSystem(n_datanodes=2)
        recovered = recover(config, fresh)
        assert fresh.id_state() == dfs.id_state()
        assert recovered.clock >= 3
