"""Unit tests for the analytical cost model (Equations 1 and 2)."""

import pytest

from repro.costmodel.calibration import GB, MB, CostParams
from repro.costmodel.model import CostModel, estimate_standalone_time
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.stats import JobStats, StoreStat


def stats_with(
    input_bytes=0,
    shuffle_bytes=0,
    op_records=0,
    stores=(),
):
    stats = JobStats(job_id="j1")
    if input_bytes:
        stats.load_bytes["in"] = input_bytes
    stats.shuffle_bytes = shuffle_bytes
    stats.shuffle_records = 1 if shuffle_bytes else 0
    stats.op_records = op_records
    stats.stores = list(stores)
    return stats


class TestClusterConfig:
    def test_slot_totals(self):
        cluster = ClusterConfig()
        assert cluster.total_map_slots == 56
        assert cluster.total_reduce_slots == 28

    def test_map_tasks_per_block(self):
        cluster = ClusterConfig()
        assert cluster.n_map_tasks(0) == 1
        assert cluster.n_map_tasks(cluster.sim_block_size) == 1
        assert cluster.n_map_tasks(cluster.sim_block_size * 3.5) == 4

    def test_reduce_tasks_capped(self):
        cluster = ClusterConfig()
        assert cluster.n_reduce_tasks(100) == 28
        assert cluster.n_reduce_tasks(4) == 4
        assert cluster.n_reduce_tasks(0) == 1


class TestEquation2:
    def test_startup_always_paid(self):
        model = CostModel()
        bd = model.job_time(stats_with())
        assert bd.t_startup == model.params.job_startup_s
        assert bd.total >= bd.t_startup

    def test_load_scales_with_bytes(self):
        model = CostModel(data_scale=1.0)
        small = model.job_time(stats_with(input_bytes=int(1 * GB)))
        large = model.job_time(stats_with(input_bytes=int(100 * GB)))
        assert large.t_load > small.t_load * 10

    def test_data_scale_multiplies(self):
        base = CostModel(data_scale=1.0).job_time(
            stats_with(input_bytes=int(10 * GB))
        )
        scaled = CostModel(data_scale=10.0).job_time(
            stats_with(input_bytes=int(10 * GB))
        )
        assert scaled.t_load > base.t_load * 5

    def test_shuffle_term(self):
        model = CostModel()
        bd = model.job_time(stats_with(shuffle_bytes=int(1 * GB)))
        assert bd.t_sort > 0
        assert bd.n_reduce_tasks > 0

    def test_map_only_job_has_no_reducers(self):
        model = CostModel()
        bd = model.job_time(stats_with(input_bytes=1000))
        assert bd.n_reduce_tasks == 0
        assert bd.t_sort == 0

    def test_side_store_fixed_cost(self):
        model = CostModel()
        side = StoreStat(path="s", bytes=10, records=1, phase="map", side=True)
        bd = model.job_time(stats_with(stores=[side]))
        assert bd.t_side_stores >= model.params.side_store_fixed_s

    def test_primary_store_no_fixed_cost(self):
        model = CostModel()
        primary = StoreStat(path="o", bytes=10, records=1, phase="map")
        bd = model.job_time(stats_with(stores=[primary]))
        assert bd.t_store < model.params.side_store_fixed_s

    def test_reduce_side_store_slower_than_map_side(self):
        """The paper's L6 effect: few reducers writing a large blob."""
        model = CostModel(data_scale=1e6)
        blob = int(5 * MB)  # 5 TB scaled... large either way
        map_side = model.job_time(
            stats_with(
                input_bytes=int(100 * MB),
                stores=[StoreStat("s", blob, 1, "map", side=True)],
            )
        )
        reduce_side = model.job_time(
            stats_with(
                input_bytes=int(100 * MB),
                shuffle_bytes=1000,
                stores=[StoreStat("s", blob, 1, "reduce", side=True)],
            )
        )
        assert reduce_side.t_side_stores > map_side.t_side_stores

    def test_total_without_side_stores(self):
        model = CostModel()
        side = StoreStat(path="s", bytes=10, records=1, phase="map", side=True)
        bd = model.job_time(stats_with(input_bytes=1000, stores=[side]))
        assert bd.total_without_side_stores == pytest.approx(
            bd.total - bd.t_side_stores
        )


class TestEquation1:
    def test_chain_adds(self):
        model = CostModel()
        times = {"a": 10.0, "b": 5.0}
        deps = {"b": ["a"], "a": []}
        assert model.workflow_time(times, deps) == 15.0

    def test_parallel_takes_max(self):
        """Independent jobs overlap: T = ET(c) + max(ET(a), ET(b))."""
        model = CostModel()
        times = {"a": 10.0, "b": 4.0, "c": 2.0}
        deps = {"c": ["a", "b"], "a": [], "b": []}
        assert model.workflow_time(times, deps) == 12.0

    def test_eliminated_jobs_cost_nothing(self):
        model = CostModel()
        times = {"b": 5.0}
        deps = {"b": ["a"], "a": []}
        assert model.workflow_time(times, deps) == 5.0

    def test_empty_workflow(self):
        assert CostModel().workflow_time({}, {}) == 0.0

    def test_diamond(self):
        model = CostModel()
        times = {"a": 1.0, "b": 10.0, "c": 2.0, "d": 1.0}
        deps = {"d": ["b", "c"], "b": ["a"], "c": ["a"], "a": []}
        assert model.workflow_time(times, deps) == 12.0


class TestStandaloneEstimate:
    def test_monotone_in_input(self):
        model = CostModel()
        small = estimate_standalone_time(model, int(1 * GB), 0)
        large = estimate_standalone_time(model, int(100 * GB), 0)
        assert large > small

    def test_includes_startup(self):
        model = CostModel()
        assert (
            estimate_standalone_time(model, 0, 0)
            >= model.params.job_startup_s
        )


class TestParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CostParams(read_bw_per_task=0)

    def test_defaults_positive(self):
        params = CostParams()
        assert params.job_startup_s > 0
        assert params.side_store_fixed_s > 0
