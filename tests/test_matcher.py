"""Unit tests for plan matching (paper §3, Algorithm 1 semantics)."""

from repro.core.matcher import MatchResult, PlanMatcher, operators_equivalent
from repro.pig.physical.operators import (
    POFilter,
    POForEach,
    POGlobalRearrange,
    POLoad,
    POLocalRearrange,
    POPackage,
    POSplit,
    POStore,
)
from repro.pig.physical.plan import PhysicalPlan, linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import Schema
from repro.relational.types import DataType

SCHEMA = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))


def project_plan(path="pv", store="s1"):
    """Load -> project(u) -> Store  (a Figure 5 sub-job)."""
    return linear_plan(
        POLoad(path, SCHEMA),
        POForEach([Column(0)], [False], ["u"], schema=SCHEMA.project([0])),
        POStore(store, SCHEMA.project([0])),
    )


def filter_project_plan(path="pv", store="out"):
    """Load -> filter -> project -> Store."""
    return linear_plan(
        POLoad(path, SCHEMA),
        POFilter(BinaryOp(">", Column(1), Const(1.0)), schema=SCHEMA),
        POForEach([Column(0)], [False], ["u"], schema=SCHEMA.project([0])),
        POStore(store, SCHEMA.project([0])),
    )


def join_plan(store="out"):
    """Two loads -> projections -> join (the Figure 2 job)."""
    plan = PhysicalPlan()
    load_a = plan.add(POLoad("pv", SCHEMA))
    proj_a = plan.add(POForEach([Column(0)], [False], ["u"], schema=SCHEMA.project([0])))
    load_b = plan.add(POLoad("users", SCHEMA))
    proj_b = plan.add(POForEach([Column(0)], [False], ["n"], schema=SCHEMA.project([0])))
    lr_a = plan.add(POLocalRearrange([Column(0)], branch=0))
    lr_b = plan.add(POLocalRearrange([Column(0)], branch=1))
    gr = plan.add(POGlobalRearrange(2))
    pkg = plan.add(POPackage("join", 2))
    store_op = plan.add(POStore(store))
    plan.connect(load_a, proj_a)
    plan.connect(proj_a, lr_a)
    plan.connect(load_b, proj_b)
    plan.connect(proj_b, lr_b)
    plan.connect(lr_a, gr)
    plan.connect(lr_b, gr)
    plan.connect(gr, pkg)
    plan.connect(pkg, store_op)
    return plan


class TestOperatorEquivalence:
    def test_same_signature_equivalent(self):
        a = POFilter(BinaryOp(">", Column(1), Const(1.0)))
        b = POFilter(BinaryOp(">", Column(1), Const(1.0)))
        assert operators_equivalent(a, b)

    def test_different_predicate_not_equivalent(self):
        a = POFilter(BinaryOp(">", Column(1), Const(1.0)))
        b = POFilter(BinaryOp(">", Column(1), Const(2.0)))
        assert not operators_equivalent(a, b)

    def test_stores_always_equivalent(self):
        assert operators_equivalent(POStore("x"), POStore("y"))


class TestContainment:
    def test_plan_contains_itself(self):
        matcher = PlanMatcher()
        assert matcher.contains(project_plan(), project_plan())

    def test_sub_plan_contained_in_larger(self):
        matcher = PlanMatcher()
        assert matcher.contains(filter_project_plan(),
                                linear_plan(
                                    POLoad("pv", SCHEMA),
                                    POFilter(BinaryOp(">", Column(1), Const(1.0)), schema=SCHEMA),
                                    POStore("s", SCHEMA),
                                ))

    def test_larger_not_contained_in_smaller(self):
        matcher = PlanMatcher()
        small = linear_plan(
            POLoad("pv", SCHEMA),
            POFilter(BinaryOp(">", Column(1), Const(1.0)), schema=SCHEMA),
            POStore("s", SCHEMA),
        )
        assert not matcher.contains(small, filter_project_plan())

    def test_different_load_path_no_match(self):
        matcher = PlanMatcher()
        assert matcher.match(project_plan("pv"), project_plan("other")) is None

    def test_different_projection_no_match(self):
        matcher = PlanMatcher()
        repo = linear_plan(
            POLoad("pv", SCHEMA),
            POForEach([Column(1)], [False], ["r"]),
            POStore("s"),
        )
        assert matcher.match(project_plan(), repo) is None

    def test_project_subjob_matches_join_job(self):
        """Figure 5's sub-jobs are contained in Figure 2's join job."""
        matcher = PlanMatcher()
        result = matcher.match(join_plan(), project_plan("pv"))
        assert result is not None
        assert not result.whole_job
        assert isinstance(result.frontier, POForEach)

    def test_whole_job_detection(self):
        matcher = PlanMatcher()
        result = matcher.match(join_plan("o1"), join_plan("o2"))
        assert result is not None
        assert result.whole_job

    def test_frontier_is_op_feeding_store(self):
        matcher = PlanMatcher()
        result = matcher.match(filter_project_plan(), filter_project_plan())
        assert isinstance(result.frontier, POForEach)


class TestSplitTransparency:
    def test_match_through_split(self):
        """Plans instrumented with Split tees must still match."""
        plan = PhysicalPlan()
        load = plan.add(POLoad("pv", SCHEMA))
        split = plan.add(POSplit())
        side = plan.add(POStore("side", SCHEMA, side=True))
        proj = plan.add(
            POForEach([Column(0)], [False], ["u"], schema=SCHEMA.project([0]))
        )
        store = plan.add(POStore("out", SCHEMA.project([0])))
        plan.connect(load, split)
        plan.connect(split, side)
        plan.connect(split, proj)
        plan.connect(proj, store)

        matcher = PlanMatcher()
        result = matcher.match(plan, project_plan("pv"))
        assert result is not None
        assert result.frontier is proj


class TestBacktracking:
    def test_symmetric_branches(self):
        """Self-join-like plans need backtracking: two loads of the
        same path with different downstream projections."""
        plan = PhysicalPlan()
        load_1 = plan.add(POLoad("pv", SCHEMA))
        proj_u = plan.add(
            POForEach([Column(0)], [False], ["u"], schema=SCHEMA.project([0]))
        )
        load_2 = plan.add(POLoad("pv", SCHEMA))
        proj_r = plan.add(
            POForEach([Column(1)], [False], ["r"], schema=SCHEMA.project([1]))
        )
        lr_1 = plan.add(POLocalRearrange([Column(0)], branch=0))
        lr_2 = plan.add(POLocalRearrange([Column(0)], branch=1))
        gr = plan.add(POGlobalRearrange(2))
        pkg = plan.add(POPackage("join", 2))
        store = plan.add(POStore("out"))
        plan.connect(load_1, proj_u)
        plan.connect(load_2, proj_r)
        plan.connect(proj_u, lr_1)
        plan.connect(proj_r, lr_2)
        plan.connect(lr_1, gr)
        plan.connect(lr_2, gr)
        plan.connect(gr, pkg)
        plan.connect(pkg, store)

        # repo plan projects column 1: matching must not get stuck on
        # the first (column-0) load branch.
        repo = linear_plan(
            POLoad("pv", SCHEMA),
            POForEach([Column(1)], [False], ["r"], schema=SCHEMA.project([1])),
            POStore("s"),
        )
        result = PlanMatcher().match(plan, repo)
        assert result is not None
        assert result.frontier is proj_r


class TestMatchResult:
    def test_mapping_is_injective(self):
        matcher = PlanMatcher()
        result = matcher.match(join_plan(), join_plan())
        image_ids = [op.op_id for op in result.mapping.values()]
        assert len(image_ids) == len(set(image_ids))

    def test_matched_input_ids(self):
        matcher = PlanMatcher()
        result = matcher.match(project_plan(), project_plan())
        assert len(result.matched_input_ids) == 2  # load + foreach
