"""Fingerprint invariants and the repository's inverted index.

Covers the tentpole guarantees:

* plan fingerprints are Merkle digests of operator signatures — equal
  fingerprints ⇔ matcher equivalence (property-tested);
* fingerprint caches invalidate on every mutation path (structural
  edits, schema assignment, in-place load redirects);
* the index and the incrementally maintained §3 order stay consistent
  through adds, removals, and evictions (checked against from-scratch
  oracles, including the historical two-pass sort);
* candidate pruning never changes rewrite decisions, and at N=1000 it
  runs ≥10x fewer pairwise traversals than the full scan;
* entry ids are scoped per repository (deterministic across sessions
  in one process).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.repo_scale import run_scale
from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.matcher import PlanMatcher
from repro.core.repository import EntryStats, Repository, RepositoryEntry
from repro.events import MatchScanned
from repro.pig.physical.operators import (
    POFilter,
    POForEach,
    POLoad,
    POStore,
)
from repro.pig.physical.plan import linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.session import ReStoreSession

SCHEMA = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))

# -- generated linear plans (split-free: the matcher looks through
# POSplit tees, which fingerprints deliberately keep visible) ----------

op_spec = st.tuples(
    st.sampled_from(["filter", "project"]), st.integers(0, 3)
)


def build_plan(specs, path="p", out="out"):
    schema = Schema.of(("a", DataType.INT), ("b", DataType.INT))
    ops = [POLoad(path, schema)]
    for kind, param in specs:
        if kind == "filter":
            ops.append(
                POFilter(BinaryOp(">", Column(0), Const(param)), schema=schema)
            )
        else:
            ops.append(
                POForEach(
                    [Column(param % 2), Column((param + 1) % 2)],
                    [False, False],
                    ["x", "y"],
                    schema=schema,
                )
            )
    ops.append(POStore(out, schema))
    return linear_plan(*ops)


def plans_equivalent(plan_a, plan_b) -> bool:
    """Matcher equivalence: mutual whole-job containment."""
    matcher = PlanMatcher()
    forward = matcher.match(plan_a, plan_b)
    backward = matcher.match(plan_b, plan_a)
    return bool(
        forward is not None
        and forward.whole_job
        and backward is not None
        and backward.whole_job
    )


class TestFingerprintEquivalenceProperty:
    @given(
        st.lists(op_spec, max_size=5),
        st.lists(op_spec, max_size=5),
        st.sampled_from(["p1", "p2"]),
        st.sampled_from(["p1", "p2"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_equal_fingerprints_iff_matcher_equivalent(
        self, specs_a, specs_b, path_a, path_b
    ):
        plan_a = build_plan(specs_a, path_a, "out_a")
        plan_b = build_plan(specs_b, path_b, "out_b")
        assert (plan_a.fingerprint() == plan_b.fingerprint()) == (
            plans_equivalent(plan_a, plan_b)
        )

    @given(st.lists(op_spec, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_fingerprint_stable_across_repeated_reads(self, specs):
        plan = build_plan(specs)
        assert plan.fingerprint() == plan.fingerprint()
        assert plan.load_signature_set() == plan.load_signature_set()
        assert dict(plan.signature_counts()) == dict(plan.signature_counts())


class TestFingerprintCacheInvalidation:
    def test_structural_mutation_changes_fingerprint(self):
        plan = build_plan([("filter", 1)])
        before = plan.fingerprint()
        load, filt = plan.topo_order()[0], plan.topo_order()[1]
        extra = POForEach([Column(0)], [False], ["a"], schema=SCHEMA)
        plan.insert_between(load, filt, extra)
        after = plan.fingerprint()
        assert before != after
        plan.remove(extra)
        plan.connect(load, filt)
        assert plan.fingerprint() == before

    def test_schema_assignment_invalidates_load_signature(self):
        plan = build_plan([])
        load = plan.loads()[0]
        before = plan.fingerprint()
        load.schema = Schema.of(("z", DataType.INT))
        assert plan.fingerprint() != before

    def test_inplace_path_edit_with_invalidate(self):
        plan = build_plan([("filter", 2)])
        load = plan.loads()[0]
        before = plan.fingerprint()
        load.path = "elsewhere"
        load.invalidate_fingerprint()
        assert plan.fingerprint() != before
        assert plan.load_signature_set() != build_plan(
            [("filter", 2)]
        ).load_signature_set()

    def test_signature_counts_follow_mutation(self):
        plan = build_plan([("filter", 1)])
        filt = [op for op in plan if isinstance(op, POFilter)][0]
        counts_before = dict(plan.signature_counts())
        plan.disconnect(plan.loads()[0], filt)
        plan.connect(plan.loads()[0], filt)  # structure same, cache redone
        assert dict(plan.signature_counts()) == counts_before


# -- repository index consistency -------------------------------------


def make_entry(specs, path, out, input_bytes=1000, output_bytes=100,
               exec_time=10.0):
    return RepositoryEntry(
        plan=build_plan(specs, path, out),
        output_path=out,
        output_schema=SCHEMA,
        stats=EntryStats(
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            exec_time_s=exec_time,
        ),
        input_mtimes={path: 1},
    )


def assert_index_consistent(repo: Repository) -> None:
    """White-box invariant: every index references live entries only,
    and every live entry is fully indexed."""
    live = set(repo._entries)
    views = repo.merged_index_views()
    indexed_by_fp = {
        eid for bucket in views["by_fingerprint"].values() for eid in bucket
    }
    indexed_by_load = {
        eid for holders in views["by_load_sig"].values() for eid in holders
    }
    indexed_by_input = {
        eid for holders in views["by_input_path"].values() for eid in holders
    }
    assert indexed_by_fp == live
    assert indexed_by_load == live
    assert indexed_by_input <= live
    assert set(repo._sig_counts) == live
    assert set(repo._sorted) | set(repo._pending) == live
    assert not set(repo._sorted) & set(repo._pending)
    for subsumed in repo._subsumes.values():
        assert subsumed <= live
    for holders in repo._subsumed_by.values():
        assert holders <= live


def legacy_two_pass_order(repo: Repository):
    """The historical O(n²) ordering — the oracle the incremental
    order must reproduce exactly."""
    matcher = PlanMatcher()
    entries = sorted(
        repo._entries.values(), key=lambda e: repo._seq[e.entry_id]
    )
    entries.sort(
        key=lambda e: (e.stats.io_ratio, e.stats.exec_time_s),
        reverse=True,
    )
    scores = {
        e.entry_id: sum(
            1
            for other in entries
            if other is not e and matcher.contains(e.plan, other.plan)
        )
        for e in entries
    }
    entries.sort(key=lambda e: scores[e.entry_id], reverse=True)
    return [e.entry_id for e in entries]


def random_entries(rng, n):
    entries = []
    for i in range(n):
        specs = [("filter", rng.randint(0, 2))]
        if rng.random() < 0.6:
            specs.append(("project", rng.randint(0, 2)))
        if rng.random() < 0.4:
            specs.append(("filter", rng.randint(0, 2)))
        entries.append(make_entry(
            specs,
            path=f"ds{rng.randint(0, 2)}",
            out=f"stored/o{i}",
            input_bytes=rng.randrange(100, 10_000),
            output_bytes=rng.randrange(10, 1_000),
            exec_time=rng.uniform(1.0, 50.0),
        ))
    return entries


class TestIncrementalOrdering:
    def test_matches_legacy_two_pass_sort_under_churn(self):
        rng = random.Random(7)
        repo = Repository()
        alive = []
        for step in range(60):
            if alive and rng.random() < 0.35:
                victim = alive.pop(rng.randrange(len(alive)))
                repo.remove(victim.entry_id)
            else:
                entry = random_entries(rng, 1)[0]
                repo.add(entry)
                alive.append(entry)
            ordered = [e.entry_id for e in repo.ordered_entries()]
            assert ordered == legacy_two_pass_order(repo)
            assert_index_consistent(repo)

    def test_ordering_disabled_returns_insertion_order(self):
        rng = random.Random(3)
        repo = Repository(ordering_enabled=False)
        entries = random_entries(rng, 8)
        for entry in entries:
            repo.add(entry)
        assert [e.entry_id for e in repo.ordered_entries()] == [
            e.entry_id for e in entries
        ]
        # the lazy order never paid a single matcher traversal
        assert repo.index_stats.subsume_checks == 0


class TestIndexAfterEviction:
    def test_eviction_updates_index_in_place(self, dfs):
        rng = random.Random(11)
        repo = Repository()
        entries = random_entries(rng, 10)
        for entry in entries:
            repo.add(entry)
        repo.ordered_entries()
        manager = ReStoreManager(dfs, repository=repo)
        victim = entries[3]
        manager._evict(victim, "test")
        assert_index_consistent(repo)
        found = repo.find_equivalent(victim.plan)
        assert found is None or found.entry_id != victim.entry_id
        candidates, _ = repo.match_candidates(victim.plan)
        assert victim.entry_id not in {e.entry_id for e in candidates}
        # order still matches the from-scratch oracle
        assert [e.entry_id for e in repo.ordered_entries()] == (
            legacy_two_pass_order(repo)
        )

    def test_find_equivalent_uses_index(self):
        repo = Repository()
        entry = make_entry([("filter", 1)], "ds0", "stored/a")
        repo.add(entry)
        duplicate = make_entry([("filter", 1)], "ds0", "stored/b")
        assert repo.find_equivalent(duplicate.plan) is entry
        assert repo.index_stats.exact_hits == 1
        repo.remove(entry.entry_id)
        assert repo.find_equivalent(duplicate.plan) is None


class TestEntryIdScoping:
    def test_two_repositories_share_no_counter(self):
        repo_a, repo_b = Repository(), Repository()
        first_a = repo_a.add(make_entry([], "ds0", "stored/a1"))
        second_a = repo_a.add(make_entry([], "ds1", "stored/a2"))
        first_b = repo_b.add(make_entry([], "ds0", "stored/b1"))
        assert first_a.entry_id == "entry_000001"
        assert second_a.entry_id == "entry_000002"
        assert first_b.entry_id == "entry_000001"

    def test_same_id_re_add_keeps_insertion_position(self):
        repo = Repository()
        first = repo.add(make_entry([], "ds0", "stored/a"))
        repo.add(make_entry([("filter", 1)], "ds1", "stored/b"))
        replacement = make_entry([("project", 0)], "ds2", "stored/a2")
        replacement.entry_id = first.entry_id
        repo.add(replacement)
        # dict-replace semantics: still first in insertion order
        assert [e.entry_id for e in repo][0] == first.entry_id
        assert repo.get(first.entry_id) is replacement
        assert len(repo) == 2
        assert_index_consistent(repo)
        assert [e.entry_id for e in repo.ordered_entries()] == (
            legacy_two_pass_order(repo)
        )

    def test_loaded_ids_never_collide_with_generated(self):
        from repro.persistence.snapshot import RepositorySnapshot

        repo = Repository()
        repo.add(make_entry([], "ds0", "stored/a"))
        restored = RepositorySnapshot.from_bytes(
            RepositorySnapshot.capture(repo).to_bytes()
        ).restore_repository()
        fresh = restored.add(make_entry([("filter", 1)], "ds0", "stored/b"))
        assert fresh.entry_id != "entry_000001"
        assert len(restored) == 2
        assert_index_consistent(restored)


def small_data_dfs():
    """Fresh DFS with the conftest micro dataset (needed twice, so a
    plain function rather than the function-scoped fixture)."""
    from repro.dfs.filesystem import DistributedFileSystem

    dfs = DistributedFileSystem(n_datanodes=4, block_size=4 * 1024)
    page_views = [
        "alice\t1\t100\t1.5\tinfoA\tlinksA",
        "bob\t1\t102\t4.0\tinfoC\tlinksC",
        "carol\t3\t103\t8.0\tinfoD\tlinksD",
        "dave\t2\t105\t3.0\tinfoF\tlinksF",
    ]
    dfs.write_file("data/page_views", "\n".join(page_views) + "\n")
    return dfs


class TestCandidatePruningDecisions:
    def test_indexed_and_full_scan_sessions_agree(self):
        queries = [
            """
            A = load 'data/page_views' as (user, action:int, timestamp:int,
                est_revenue:double, page_info, page_links);
            B = filter A by action == 1;
            C = foreach B generate user, est_revenue;
            D = group C by user;
            E = foreach D generate group, SUM(C.est_revenue);
            store E into 'out/%d_rev';
            """,
            """
            A = load 'data/page_views' as (user, action:int, timestamp:int,
                est_revenue:double, page_info, page_links);
            B = filter A by action == 1;
            C = foreach B generate user, est_revenue;
            D = group C by user;
            E = foreach D generate group, COUNT(C.est_revenue);
            store E into 'out/%d_cnt';
            """,
        ]

        from repro.events import JobEliminated, RewriteApplied

        def run_stream(indexed):
            session = ReStoreSession(
                dfs=small_data_dfs(),
                config=ReStoreConfig(indexed_matching=indexed),
            )
            outputs, decisions = [], []
            for i, template in enumerate(queries * 2):
                result = session.run(template % i)
                outputs.append(sorted(
                    (path, tuple(map(repr, rows)))
                    for path, rows in result.outputs.items()
                ))
                # job ids and sub-job paths come from process-global
                # counters, so compare the structural decision only
                decisions.append([
                    (type(e).__name__, e.entry_id, e.anchor_kind)
                    for e in result.events
                    if isinstance(e, RewriteApplied)
                ] + [
                    (type(e).__name__, e.entry_id, e.reason)
                    for e in result.events
                    if isinstance(e, JobEliminated)
                ])
            return outputs, decisions, session

        outputs_on, decisions_on, session_on = run_stream(True)
        outputs_off, decisions_off, session_off = run_stream(False)
        assert outputs_on == outputs_off
        assert decisions_on == decisions_off
        totals_on = session_on.match_stats
        totals_off = session_off.match_stats
        assert totals_on.candidates_pruned > 0
        assert totals_off.candidates_pruned == 0
        assert totals_on.traversals <= totals_off.traversals

    def test_match_scanned_events_on_bus_only(self, small_data):
        session = ReStoreSession(dfs=small_data)
        scans = session.events.collect(event_types=MatchScanned)
        first = session.run(
            "A = load 'data/users' as (name, phone, address, city);"
            "B = filter A by city == 'waterloo';"
            "store B into 'out/w1';"
        )
        second = session.run(
            "A = load 'data/users' as (name, phone, address, city);"
            "B = filter A by city == 'waterloo';"
            "C = foreach B generate name;"
            "store C into 'out/w2';"
        )
        assert not any(isinstance(e, MatchScanned) for e in first.events)
        assert not any(isinstance(e, MatchScanned) for e in second.events)
        assert scans  # repository was non-empty on the second run
        assert all(e.entries_total > 0 for e in scans)
        assert session.match_stats.jobs_scanned >= 2


class TestScaleGate:
    def test_1000_entries_tenfold_fewer_traversals(self):
        scale = run_scale(n_entries=1000, n_probes=20, seed=13)
        assert scale["decisions_identical"]
        assert scale["traversal_reduction"] >= 10.0
        indexed = scale["modes"]["indexed"]
        full = scale["modes"]["full_scan"]
        assert indexed["rewrites"] == full["rewrites"]
        assert indexed["eliminations"] == full["eliminations"]
        assert indexed["candidates_examined"] <= full["entries_seen"]
