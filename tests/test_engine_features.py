"""Tests for engine-level features: EXPLAIN, SAMPLE, run results."""

import pytest

from repro.exceptions import PigParseError
from repro.pig.engine import PigServer
from repro.pig.parser import parse
from repro.relational.expressions import RowSample, expression_from_dict

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"


class TestExplain:
    def test_single_job(self, server):
        text = server.explain(f"""
            A = load 'data/page_views' as ({PV});
            B = filter A by action == 1;
            store B into 'out';
        """)
        assert "1 MapReduce job(s)" in text
        assert "map-only" in text
        assert "filter" in text

    def test_multi_job_with_dependencies(self, server):
        text = server.explain(f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, est_revenue;
            alpha = load 'data/users' as ({USERS});
            beta = foreach alpha generate name;
            C = join beta by name, B by user;
            D = group C by $0;
            E = foreach D generate group, SUM(C.est_revenue);
            store E into 'out';
        """)
        assert "2 MapReduce job(s)" in text
        assert "temporary output" in text
        assert "depends on: job_" in text
        assert "package join" in text
        assert "package group" in text

    def test_explain_does_not_execute(self, small_data):
        server = PigServer(small_data)
        server.explain(f"""
            A = load 'data/page_views' as ({PV});
            store A into 'never_written';
        """)
        assert not small_data.exists("never_written")


class TestSample:
    def test_parses(self):
        script = parse("B = sample A 0.5;")
        assert script.statements[0].fraction == 0.5

    def test_fraction_validated(self):
        with pytest.raises(PigParseError):
            parse("B = sample A 1.5;")

    def test_sampling_reduces_rows(self, server):
        full = server.run(f"""
            A = load 'data/page_views' as ({PV});
            store A into 'out_full';
        """)
        sampled = server.run(f"""
            A = load 'data/page_views' as ({PV});
            B = sample A 0.5;
            store B into 'out_half';
        """)
        assert len(sampled.outputs["out_half"]) <= len(full.outputs["out_full"])

    def test_sampling_deterministic(self, server):
        query = f"""
            A = load 'data/page_views' as ({PV});
            B = sample A 0.5;
            store B into 'OUT';
        """
        first = server.run(query.replace("OUT", "s1")).outputs["s1"]
        second = server.run(query.replace("OUT", "s2")).outputs["s2"]
        assert first == second

    def test_sample_zero_and_one(self, server):
        none = server.run(f"""
            A = load 'data/page_views' as ({PV});
            B = sample A 0.0;
            store B into 'none';
        """)
        assert none.outputs["none"] == []
        everything = server.run(f"""
            A = load 'data/page_views' as ({PV});
            B = sample A 1.0;
            store B into 'all';
        """)
        assert len(everything.outputs["all"]) == 6

    def test_rowsample_expression_round_trip(self):
        expr = RowSample(0.25)
        restored = expression_from_dict(expr.to_dict())
        assert restored.fingerprint() == expr.fingerprint()

    def test_sampled_subjob_is_reusable(self, small_data):
        """A sampled projection is deterministic, hence a valid
        repository entry that future queries can reuse."""
        from repro.core.manager import ReStoreManager

        manager = ReStoreManager(small_data)
        server = PigServer(small_data, restore=manager)
        query = f"""
            A = load 'data/page_views' as ({PV});
            S = sample A 0.6;
            B = foreach S generate user, est_revenue;
            D = group B by user;
            E = foreach D generate group, COUNT(B);
            store E into 'OUT';
        """
        first = server.run(query.replace("OUT", "o1")).outputs["o1"]
        second_run = server.run(query.replace("OUT", "o2"))
        assert sorted(second_run.outputs["o2"]) == sorted(first)
        assert second_run.stats.n_jobs_executed <= 1


class TestRunResult:
    def test_single_output_helper(self, server):
        result = server.run(f"""
            A = load 'data/page_views' as ({PV});
            B = limit A 2;
            store B into 'only';
        """)
        assert len(result.single_output()) == 2

    def test_single_output_raises_on_multiple(self, server):
        result = server.run(f"""
            A = load 'data/page_views' as ({PV});
            store A into 'o1';
            store A into 'o2';
        """)
        with pytest.raises(ValueError):
            result.single_output()

    def test_sim_minutes_property(self, server):
        result = server.run(f"""
            A = load 'data/page_views' as ({PV});
            store A into 'x';
        """)
        assert result.sim_minutes == pytest.approx(result.sim_seconds / 60.0)
