"""The concurrent multi-tenant job service.

Covers the tentpole guarantees:

* stress — 8 workers × 50 jobs against one shared repository lose no
  entries, duplicate none (concurrent identical registrations resolve
  through the atomic ``add_if_absent``), and leave every index
  consistent; the whole run is bounded by an explicit deadline so a
  deadlock fails instead of hanging tier-1;
* differential — the same workload run serially and through a
  1-worker service produces an equivalent final repository (same
  entry multiset by fingerprint) and byte-identical per-job rewrite
  decisions;
* per-session event isolation — sessions sharing one manager (or one
  repository across managers) drain only their own events;
* deterministic interleavings — the seeded ``StepScheduler`` fixture
  replays repository races exactly.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from test_fingerprint_index import assert_index_consistent, legacy_two_pass_order

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.repository import Repository
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import RewriteApplied, SubJobStored
from repro.mapreduce.job import MapReduceJob, Workflow
from repro.pig.physical.operators import POFilter, POLoad, POStore
from repro.pig.physical.plan import linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.service import JobService, WorkloadDriver, decision_log
from repro.session import ReStoreSession

SCHEMA = Schema.of(("name", DataType.CHARARRAY), ("b", DataType.INT))

#: overall deadline for the stress run — the tier-1 timeout guard
STRESS_DEADLINE_S = 60.0


def filter_plan(dataset: str, threshold: int, out: str):
    return linear_plan(
        POLoad(dataset, SCHEMA),
        POFilter(BinaryOp(">", Column(1), Const(threshold)), schema=SCHEMA),
        POStore(out, SCHEMA),
    )


def filter_workflow(dataset: str, threshold: int, out: str, job_id: str) -> Workflow:
    job = MapReduceJob(filter_plan(dataset, threshold, out), job_id=job_id)
    return Workflow(jobs=[job], name=f"wf-{job_id}")


def write_datasets(dfs: DistributedFileSystem, names) -> None:
    rows = "\n".join(f"row{i}\t{i}" for i in range(30)) + "\n"
    for name in names:
        dfs.write_file(name, rows, overwrite=True)


class TestServiceStress:
    def test_8_workers_50_jobs_no_lost_or_duplicated_entries(self):
        """8 tenants × 50 jobs; 100 distinct computations repeated 4x
        each, so concurrent duplicate registrations race constantly."""
        n_tenants, jobs_per_tenant = 8, 50
        datasets = [f"stress/ds{d}" for d in range(4)]
        service = JobService(
            datanodes=2,
            config=ReStoreConfig(inject_enabled=False),
            max_workers=n_tenants,
        )
        write_datasets(service.dfs, datasets)
        tenants = [service.open_session(f"t{w}") for w in range(n_tenants)]

        futures = []
        expected_plans = {}
        for w, tenant in enumerate(tenants):
            for j in range(jobs_per_tenant):
                dataset = datasets[w % len(datasets)]
                threshold = j % 25
                out = f"stress/out/w{w}_j{j}"
                expected_plans.setdefault(
                    (dataset, threshold),
                    filter_plan(dataset, threshold, "oracle").fingerprint(),
                )
                futures.append(
                    tenant.submit_workflow(
                        filter_workflow(dataset, threshold, out, f"s_{w}_{j}")
                    )
                )

        for future in futures:
            future.result(timeout=STRESS_DEADLINE_S)
        service.shutdown()

        repo = service.repository
        assert service.stats.completed == n_tenants * jobs_per_tenant
        assert service.stats.failed == 0
        # no lost and no duplicated entries: exactly one entry per
        # distinct computation, none unaccounted for
        assert len(repo) == len(expected_plans)
        stored = Counter(e.plan.fingerprint() for e in repo.entries())
        assert stored == Counter(expected_plans.values())
        # no corrupted index state
        assert_index_consistent(repo)
        ordered = repo.ordered_entries()
        assert {e.entry_id for e in ordered} == {e.entry_id for e in repo.entries()}
        for fingerprint in expected_plans.values():
            hits = [e for e in repo.entries() if e.plan.fingerprint() == fingerprint]
            assert len(hits) == 1
            assert repo.find_equivalent(hits[0].plan) is hits[0]

    def test_per_session_fifo_under_concurrency(self):
        """One tenant's submissions never interleave: job N+1 observes
        the repository state N left behind (its duplicate probe hits)."""
        service = JobService(
            datanodes=2,
            config=ReStoreConfig(inject_enabled=False),
            max_workers=4,
        )
        write_datasets(service.dfs, ["fifo/ds"])
        tenant = service.open_session("fifo")
        futures = [
            tenant.submit_workflow(
                filter_workflow("fifo/ds", 3, f"fifo/out/{j}", f"fifo_{j}")
            )
            for j in range(6)
        ]
        results = [f.result(timeout=STRESS_DEADLINE_S) for f in futures]
        service.shutdown()
        # exact submission order: tickets gate execution even when
        # several pool workers dequeue one tenant's jobs back to back
        assert [r.workflow.name for r in tenant.session.results] == [
            f"wf-fifo_{j}" for j in range(6)
        ]
        # the first job registers; every later identical job is
        # whole-job rewritten to a copy of the stored output
        assert len(service.repository) == 1
        assert decision_log(results[0]) == ()
        for result in results[1:]:
            assert any("whole job matched" in line for line in decision_log(result))


def brickwork_sources():
    """A small stream with real reuse structure: three templates that
    share a load+filter prefix, repeated with growing overlap."""
    filt = (
        "A = load 'data/pv' as (user, action:int, revenue:double);"
        "B = filter A by action == 1;"
    )
    templates = [
        filt + "store B into 'out/{i}_flat';",
        filt + "C = foreach B generate user, revenue; store C into 'out/{i}_proj';",
        filt + "C = foreach B generate user, revenue; D = group C by user;"
        "E = foreach D generate group, SUM(C.revenue); store E into 'out/{i}_sum';",
    ]
    return [templates[i % 3].replace("{i}", str(i)) for i in range(9)]


def prepared_dfs() -> DistributedFileSystem:
    dfs = DistributedFileSystem(n_datanodes=2)
    rows = [
        "alice\t1\t1.5",
        "bob\t1\t4.0",
        "carol\t2\t8.0",
        "alice\t1\t0.5",
        "dave\t2\t3.0",
    ]
    dfs.write_file("data/pv", "\n".join(rows) + "\n")
    return dfs


class TestDifferentialSerialVsService:
    def test_one_worker_service_equals_serial_run(self):
        sources = brickwork_sources()

        serial_session = ReStoreSession(dfs=prepared_dfs(), session_id="serial")
        serial = WorkloadDriver.run_serial(serial_session, sources)

        service = JobService(dfs=prepared_dfs(), max_workers=1)
        driver = WorkloadDriver(service, n_sessions=3)
        driven = driver.run(sources)
        service.shutdown()

        # identical per-job rewrite decisions, byte for byte
        assert driven.decisions == serial.decisions
        assert any(serial.decisions), "workload produced no reuse at all"
        # equivalent final repository: same entry multiset by fingerprint
        serial_repo = serial_session.repository
        service_repo = service.repository
        serial_counts = Counter(e.plan.fingerprint() for e in serial_repo.entries())
        service_counts = Counter(e.plan.fingerprint() for e in service_repo.entries())
        assert serial_counts == service_counts
        # and the same query outputs
        for serial_result, driven_result in zip(serial.results, driven.results):
            assert serial_result.outputs == driven_result.outputs

    def test_concurrent_run_converges_to_same_repository_contents(self):
        """At 4 workers decision *timing* may differ, but every stored
        computation is still deduplicated by fingerprint."""
        sources = brickwork_sources()
        service = JobService(dfs=prepared_dfs(), max_workers=4)
        driver = WorkloadDriver(service, n_sessions=4)
        driver.run(sources)
        service.shutdown()
        fingerprints = [e.plan.fingerprint() for e in service.repository.entries()]
        assert len(fingerprints) == len(set(fingerprints))
        assert_index_consistent(service.repository)


class TestEventIsolation:
    def test_sessions_sharing_one_manager_drain_only_their_events(self):
        dfs = prepared_dfs()
        manager = ReStoreManager(dfs)
        alice = ReStoreSession(manager=manager, session_id="alice")
        bob = ReStoreSession(manager=manager, session_id="bob")

        first = alice.run(
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "B = filter A by action == 1; store B into 'out/a';"
        )
        second = bob.run(
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "B = filter A by action == 1;"
            "C = foreach B generate user; store C into 'out/b';"
        )
        assert first.events, "alice's run stored nothing"
        assert all(e.session_id == "alice" for e in first.events)
        assert any(isinstance(e, SubJobStored) for e in first.events)
        # bob reused alice's stored result, but the events are his
        assert any(isinstance(e, RewriteApplied) for e in second.events)
        assert all(e.session_id == "bob" for e in second.events)
        # nothing left over in either session's buffer
        assert manager.drain_session("alice") == []
        assert manager.drain_session("bob") == []

    def test_two_managers_sharing_one_repository_stay_isolated(self):
        # two full manager stacks over one DFS and one repository —
        # stored outputs must live in a filesystem both can read
        repository = Repository()
        dfs = prepared_dfs()
        session_a = ReStoreSession(dfs=dfs, repository=repository, session_id="a")
        session_b = ReStoreSession(dfs=dfs, repository=repository, session_id="b")
        result_a = session_a.run(
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "B = filter A by action == 1; store B into 'out/a';"
        )
        result_b = session_b.run(
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "B = filter A by action == 1;"
            "C = foreach B generate user; store C into 'out/b';"
        )
        # b's manager found a's entry through the shared repository...
        assert any(isinstance(e, RewriteApplied) for e in result_b.events)
        # ...but each bus/drain carried only its own session's events
        assert all(e.session_id == "a" for e in result_a.events)
        assert all(e.session_id == "b" for e in result_b.events)

    def test_concurrent_tenants_drain_without_cross_talk(self):
        service = JobService(dfs=prepared_dfs(), max_workers=4)
        tenants = [service.open_session(f"tenant_{i}") for i in range(4)]
        futures = {}
        for i, tenant in enumerate(tenants):
            futures[tenant.session_id] = [
                tenant.submit(
                    "A = load 'data/pv' as (user, action:int, revenue:double);"
                    "B = filter A by action == 1;"
                    f"store B into 'out/{tenant.session_id}_{j}';"
                )
                for j in range(3)
            ]
        for session_id, fs in futures.items():
            for future in fs:
                result = future.result(timeout=STRESS_DEADLINE_S)
                assert all(e.session_id == session_id for e in result.events)
        for tenant in tenants:
            assert tenant.drain_events() == []
        service.shutdown()


class TestEvictionPinning:
    def test_eviction_condemns_entry_but_defers_file_of_in_flight_readers(self):
        """A concurrent tenant's eviction pass condemns a stale entry
        immediately (no later job may match it) but must not delete a
        stored file another tenant's in-flight job was just rewritten
        to read; the file outlives that workflow."""
        dfs = prepared_dfs()
        manager = ReStoreManager(
            dfs,
            config=ReStoreConfig(eviction_policies=["time-window:1"]),
        )
        producer = ReStoreSession(manager=manager, session_id="producer")
        producer.run(
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "B = filter A by action == 1; store B into 'out/a';"
        )
        stored = {e.output_path: e.entry_id for e in manager.repository.entries()}
        assert stored

        # a consumer workflow starts and is rewritten to read an entry
        session_b = ReStoreSession(manager=manager, session_id="consumer")
        workflow = session_b.server.compile(
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "B = filter A by action == 1;"
            "C = foreach B generate user; store C into 'out/b';"
        )
        manager.on_workflow_start(workflow)
        job = workflow.topo_order()[0]
        assert manager.before_job(job, workflow)
        read_paths = [p.path for p in job.plan.loads() if p.path in stored]
        assert read_paths, "consumer was not rewritten to read a stored output"
        read_path = read_paths[0]
        owned = read_path in manager.kept_paths

        # other tenants' workflows tick the clock far past the window
        for i in range(3):
            manager.on_workflow_start(Workflow(jobs=[], name=f"other-{i}"))
        # condemned: the stale entry left the repository at once ...
        assert stored[read_path] not in {
            e.entry_id for e in manager.repository.entries()
        }
        # ... but the file the in-flight consumer reads is untouched
        assert dfs.exists(read_path)

        manager.on_workflow_end(workflow)
        # once the reader is done, owned files are reclaimed
        assert dfs.exists(read_path) == (not owned)

    def test_sub_job_file_deletion_deferred_until_reader_finishes(self):
        """With injection on, the stored artifact is an owned sub-job
        file — the deferred-delete path must reclaim it only after the
        pinning workflow ends."""
        dfs = prepared_dfs()
        manager = ReStoreManager(
            dfs,
            config=ReStoreConfig(eviction_policies=["time-window:1"]),
        )
        producer = ReStoreSession(manager=manager, session_id="producer")
        producer.run(
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "B = filter A by action == 1;"
            "C = foreach B generate user, revenue; store C into 'out/a';"
        )
        owned_paths = set(manager.kept_paths)
        assert owned_paths, "injection stored no owned sub-job output"

        session_b = ReStoreSession(manager=manager, session_id="consumer")
        workflow = session_b.server.compile(
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "B = filter A by action == 1;"
            "C = foreach B generate user; store C into 'out/b';"
        )
        manager.on_workflow_start(workflow)
        job = workflow.topo_order()[0]
        manager.before_job(job, workflow)
        pinned_owned = {
            p.path for p in job.plan.loads() if p.path in owned_paths
        }
        assert pinned_owned, "consumer does not read an owned sub-job file"

        for i in range(3):
            manager.on_workflow_start(Workflow(jobs=[], name=f"other-{i}"))
        for path in pinned_owned:
            assert dfs.exists(path), "file deleted under an in-flight reader"
        manager.on_workflow_end(workflow)
        for path in pinned_owned:
            assert not dfs.exists(path), "deferred delete never happened"


class TestServiceLifecycle:
    def test_submit_by_session_id_opens_on_demand(self):
        service = JobService(dfs=prepared_dfs(), max_workers=2)
        future = service.submit(
            "walk-in",
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "store A into 'out/walkin';",
        )
        result = future.result(timeout=STRESS_DEADLINE_S)
        assert "out/walkin" in result.outputs
        assert service.session("walk-in").session_id == "walk-in"
        assert service.stats.completed == 1
        assert service.stats.per_session == {"walk-in": 1}
        service.shutdown()

    def test_duplicate_session_id_rejected(self):
        service = JobService(datanodes=2)
        service.open_session("dup")
        with pytest.raises(ValueError, match="already open"):
            service.open_session("dup")
        service.shutdown()

    def test_cancelled_future_does_not_wedge_ticket_chain(self):
        """A submission cancelled while still queued must release its
        FIFO turn, or every later job of that tenant blocks forever."""
        service = JobService(datanodes=2, max_workers=1)
        service.dfs.write_file("d", "x\t1\n")
        tenant = service.open_session("t")
        blocker = threading.Event()
        # occupy the single worker so later submissions sit queued
        service._executor.submit(blocker.wait, STRESS_DEADLINE_S)
        first = tenant.submit("A = load 'd' as (k, v:int); store A into 'o1';")
        second = tenant.submit("A = load 'd' as (k, v:int); store A into 'o2';")
        assert first.cancel(), "queued submission should be cancellable"
        blocker.set()
        result = second.result(timeout=STRESS_DEADLINE_S)
        assert "o2" in result.outputs
        service.shutdown()
        assert service.stats.cancelled == 1
        assert service.stats.completed == 1
        assert service.stats.in_flight == 0

    def test_failed_job_releases_pending_candidates(self):
        """A job that fails mid-execution never reaches after_job; the
        workflow-end hook must still drop its enumerated sub-job
        candidates or a long-lived shared manager leaks them."""
        service = JobService(datanodes=2, max_workers=1)
        tenant = service.open_session("t")
        future = tenant.submit("A = load 'missing' as (x); store A into 'o';")
        with pytest.raises(Exception):
            future.result(timeout=STRESS_DEADLINE_S)
        assert service.stats.failed == 1
        assert service.manager._pending == {}
        service.shutdown()

    def test_shutdown_without_wait_cancels_queued_jobs(self):
        service = JobService(datanodes=2, max_workers=1)
        service.dfs.write_file("d", "x\t1\n")
        tenant = service.open_session("t")
        blocker = threading.Event()
        service._executor.submit(blocker.wait, STRESS_DEADLINE_S)
        queued = tenant.submit("A = load 'd' as (k, v:int); store A into 'o1';")
        service.shutdown(wait=False)
        blocker.set()
        # queued work must not run against a closed session: it is
        # cancelled instead of failing with RuntimeError
        assert queued.cancelled() or queued.cancel()
        service._executor.shutdown(wait=True)

    def test_shutdown_stops_submissions(self):
        service = JobService(datanodes=2)
        tenant = service.open_session()
        assert tenant.session_id == "tenant_001"
        service.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            tenant.submit("A = load 'x' as (a); store A into 'y';")


class TestStepSchedulerInterleavings:
    def _worker(self, scheduler, repo, entries, removals):
        def run():
            for entry in entries:
                scheduler.step("add")
                repo.add(entry)
            for entry_id in removals:
                scheduler.step("remove")
                repo.remove(entry_id)
            scheduler.step("scan")
            repo.ordered_entries()

        return run

    def _build_entries(self, tag, n):
        from test_fingerprint_index import make_entry

        return [
            make_entry(
                [("filter", i % 3)],
                path=f"ds{i % 2}",
                out=f"sched/{tag}/{i}",
                input_bytes=1000 + 7 * i,
                output_bytes=50 + i,
            )
            for i in range(n)
        ]

    def test_interleaved_mutations_keep_repository_consistent(self, step_scheduler):
        for seed in (0, 7, 23):
            repo = Repository()
            scheduler = step_scheduler(seed=seed)
            workers = {}
            survivors = []
            for w in range(3):
                entries = self._build_entries(f"w{w}-s{seed}", 4)
                # each worker removes its own first entry again, so
                # removals interleave with other workers' integrations
                for entry in entries:
                    entry.entry_id = f"entry_s{seed}_w{w}_{entries.index(entry)}"
                survivors.extend(e.entry_id for e in entries[1:])
                workers[f"w{w}"] = self._worker(
                    scheduler, repo, entries, [entries[0].entry_id]
                )
            history = scheduler.run(workers)
            assert len(repo) == len(survivors)
            assert {e.entry_id for e in repo.entries()} == set(survivors)
            assert_index_consistent(repo)
            ordered_ids = [e.entry_id for e in repo.ordered_entries()]
            assert ordered_ids == legacy_two_pass_order(repo)
            # the schedule is a pure function of the seed
            replay = step_scheduler(seed=seed)
            replay_repo = Repository()
            replay_workers = {}
            for w in range(3):
                entries = self._build_entries(f"w{w}-s{seed}", 4)
                for entry in entries:
                    entry.entry_id = f"entry_s{seed}_w{w}_{entries.index(entry)}"
                replay_workers[f"w{w}"] = self._worker(
                    replay, replay_repo, entries, [entries[0].entry_id]
                )
            assert replay.run(replay_workers) == history

    def test_scheduler_reports_worker_failure(self, step_scheduler):
        scheduler = step_scheduler(seed=1)

        def fine():
            scheduler.step("a")

        def bad():
            scheduler.step("b")
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            scheduler.run({"fine": fine, "bad": bad})

    def test_unmanaged_thread_steps_are_noops(self, step_scheduler):
        scheduler = step_scheduler(seed=2)
        scheduler.step("outside")  # main thread: must not block

        done = threading.Event()

        def worker():
            scheduler.step("inside")
            done.set()

        scheduler.run({"w": worker})
        assert done.is_set()
