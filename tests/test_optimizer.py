"""Unit tests for the logical optimizer rules."""

from repro.pig.logical.builder import build_logical_plan
from repro.pig.logical.operators import LOFilter, LOForEach, LOLoad
from repro.pig.logical.optimizer import (
    LogicalOptimizer,
    MergeConsecutiveFilters,
    MergeForEach,
    PushFilterBeforeForEach,
    RemoveIdentityForEach,
)
from repro.pig.parser import parse
from repro.relational.expressions import BinaryOp, Column, Const


def build(source, optimize=True):
    plan = build_logical_plan(parse(source))
    if optimize:
        plan = LogicalOptimizer().optimize(plan)
    return plan


def chain(plan):
    """The operator chain above the single store (store first)."""
    out = []
    node = plan.stores[0]
    while node.inputs:
        node = node.inputs[0]
        out.append(node)
    return out


class TestMergeFilters:
    def test_merges_two_filters(self):
        plan = build(
            "A = load 'd' as (x:int); B = filter A by x > 1;"
            "C = filter B by x < 9; store C into 'o';"
        )
        ops = chain(plan)
        filters = [n for n in ops if isinstance(n, LOFilter)]
        assert len(filters) == 1
        assert filters[0].predicate.op == "and"

    def test_three_filters_collapse(self):
        plan = build(
            "A = load 'd' as (x:int); B = filter A by x > 1;"
            "C = filter B by x < 9; D = filter C by x != 5;"
            "store D into 'o';"
        )
        assert len([n for n in chain(plan) if isinstance(n, LOFilter)]) == 1


class TestMergeForEach:
    def test_composes_projections(self):
        plan = build(
            "A = load 'd' as (a, b, c); B = foreach A generate a, b;"
            "C = foreach B generate b; store C into 'o';"
        )
        ops = chain(plan)
        foreachs = [n for n in ops if isinstance(n, LOForEach)]
        assert len(foreachs) == 1
        assert foreachs[0].items[0].expr == Column(1)

    def test_does_not_merge_aggregates(self):
        plan = build(
            "A = load 'd' as (u, r:double); D = group A by u;"
            "E = foreach D generate group, SUM(A.r);"
            "F = foreach E generate group; store F into 'o';"
        )
        # E has aggregates -> F composes over E's *outputs* is unsafe
        # only when E isn't a pure projection; both must remain.
        foreachs = [n for n in chain(plan) if isinstance(n, LOForEach)]
        assert len(foreachs) == 2


class TestPushFilter:
    def test_filter_moves_below_projection(self):
        plan = build(
            "A = load 'd' as (x:int, y:int); B = foreach A generate y;"
            "C = filter B by y > 3; store C into 'o';"
        )
        ops = chain(plan)  # store -> foreach -> filter -> load expected
        assert isinstance(ops[0], LOForEach)
        assert isinstance(ops[1], LOFilter)
        assert isinstance(ops[2], LOLoad)
        # the pushed predicate references the *load* schema position
        assert ops[1].predicate == BinaryOp(">", Column(1), Const(3))

    def test_pushed_predicate_remapped(self):
        plan = build(
            "A = load 'd' as (x:int, y:int); B = foreach A generate y;"
            "C = filter B by y > 3; store C into 'o';"
        )
        filter_node = [n for n in chain(plan) if isinstance(n, LOFilter)][0]
        assert filter_node.predicate.references() == frozenset((1,))


class TestRemoveIdentity:
    def test_identity_projection_removed(self):
        plan = build(
            "A = load 'd' as (a, b); B = foreach A generate a, b;"
            "store B into 'o';"
        )
        assert not any(isinstance(n, LOForEach) for n in chain(plan))

    def test_reordering_projection_kept(self):
        plan = build(
            "A = load 'd' as (a, b); B = foreach A generate b, a;"
            "store B into 'o';"
        )
        assert any(isinstance(n, LOForEach) for n in chain(plan))

    def test_renaming_projection_kept(self):
        plan = build(
            "A = load 'd' as (a, b); B = foreach A generate a as z, b;"
            "store B into 'o';"
        )
        assert any(isinstance(n, LOForEach) for n in chain(plan))


class TestOptimizerMechanics:
    def test_fixpoint_terminates(self):
        optimizer = LogicalOptimizer(max_passes=3)
        plan = build_logical_plan(
            parse("A = load 'd' as (x:int); store A into 'o';")
        )
        assert optimizer.optimize(plan) is plan

    def test_rules_list_default(self):
        optimizer = LogicalOptimizer()
        kinds = {type(r) for r in optimizer.rules}
        assert kinds == {
            MergeConsecutiveFilters,
            MergeForEach,
            PushFilterBeforeForEach,
            RemoveIdentityForEach,
        }

    def test_canonicalization_improves_matching(self):
        """Two different spellings of the same query normalize to the
        same physical computation — the property ReStore match rates
        depend on."""
        from repro.pig.mrcompiler import MRCompiler

        source_a = (
            "A = load 'd' as (x:int, y:int); B = filter A by x > 1;"
            "C = filter B by y > 2; D = foreach C generate y;"
            "store D into 'o';"
        )
        source_b = (
            "A = load 'd' as (x:int, y:int);"
            "B = filter A by x > 1 and y > 2;"
            "D = foreach B generate y; store D into 'o';"
        )
        wf_a = MRCompiler("tmp/a").compile(build(source_a))
        wf_b = MRCompiler("tmp/b").compile(build(source_b))
        fp_a = wf_a.jobs[0].plan.fingerprint()
        fp_b = wf_b.jobs[0].plan.fingerprint()
        assert fp_a == fp_b
