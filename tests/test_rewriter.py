"""Unit tests for plan rewriting (paper §3, Figures 4 and 6)."""

from repro.core.matcher import PlanMatcher
from repro.core.rewriter import PlanRewriter
from repro.mapreduce.job import MapReduceJob
from repro.pig.physical.operators import (
    POFilter,
    POForEach,
    POLoad,
    POStore,
)
from repro.pig.physical.plan import linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import Schema
from repro.relational.types import DataType

SCHEMA = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))
PROJ_SCHEMA = SCHEMA.project([0])


def input_plan():
    """Load -> filter -> project -> Store."""
    return linear_plan(
        POLoad("pv", SCHEMA),
        POFilter(BinaryOp(">", Column(1), Const(1.0)), schema=SCHEMA),
        POForEach([Column(0)], [False], ["u"], schema=PROJ_SCHEMA),
        POStore("out", PROJ_SCHEMA),
    )


def repo_filter_plan():
    """Load -> filter -> Store: a stored sub-job of the above."""
    return linear_plan(
        POLoad("pv", SCHEMA),
        POFilter(BinaryOp(">", Column(1), Const(1.0)), schema=SCHEMA),
        POStore("stored/f", SCHEMA),
    )


class TestPartialRewrite:
    def test_matched_portion_replaced_by_load(self):
        plan = input_plan()
        match = PlanMatcher().match(plan, repo_filter_plan())
        load = PlanRewriter().rewrite_partial(plan, match, "stored/f", SCHEMA)

        plan.validate()
        kinds = sorted(op.kind for op in plan)
        assert kinds == ["foreach", "load", "store"]
        assert load.path == "stored/f"
        assert plan.loads()[0].path == "stored/f"

    def test_rewrite_preserves_downstream(self):
        plan = input_plan()
        match = PlanMatcher().match(plan, repo_filter_plan())
        PlanRewriter().rewrite_partial(plan, match, "stored/f", SCHEMA)
        store = plan.primary_store()
        assert store.path == "out"
        pred = plan.predecessors(store)[0]
        assert isinstance(pred, POForEach)

    def test_iterated_rewrites(self):
        """After the first rewrite, a second repo plan can match the
        rewritten plan (the paper's repeated repository scan)."""
        plan = input_plan()
        matcher = PlanMatcher()
        rewriter = PlanRewriter()
        match = matcher.match(plan, repo_filter_plan())
        rewriter.rewrite_partial(plan, match, "stored/f", SCHEMA)

        # A repo plan computing project over the stored filter output:
        repo_2 = linear_plan(
            POLoad("stored/f", SCHEMA),
            POForEach([Column(0)], [False], ["u"], schema=PROJ_SCHEMA),
            POStore("stored/fp", PROJ_SCHEMA),
        )
        match_2 = matcher.match(plan, repo_2)
        assert match_2 is not None
        rewriter.rewrite_partial(plan, match_2, "stored/fp", PROJ_SCHEMA)
        kinds = sorted(op.kind for op in plan)
        assert kinds == ["load", "store"]


class TestCopyJob:
    def test_final_job_degrades_to_copy(self):
        job = MapReduceJob(input_plan())
        PlanRewriter().rewrite_as_copy_job(job, "stored/full", PROJ_SCHEMA)
        job.validate()
        assert len(job.plan) == 2
        assert job.plan.loads()[0].path == "stored/full"
        assert job.plan.primary_store().path == "out"


class TestRedirectLoads:
    def test_redirect(self):
        job_a = MapReduceJob(input_plan())
        job_b = MapReduceJob(
            linear_plan(POLoad("pv", SCHEMA), POStore("o2", SCHEMA))
        )
        n = PlanRewriter().redirect_loads([job_a, job_b], "pv", "stored/pv")
        assert n == 2
        assert all(
            load.path == "stored/pv"
            for job in (job_a, job_b)
            for load in job.plan.loads()
        )

    def test_redirect_only_matching_paths(self):
        job = MapReduceJob(
            linear_plan(POLoad("other", SCHEMA), POStore("o", SCHEMA))
        )
        n = PlanRewriter().redirect_loads([job], "pv", "stored/pv")
        assert n == 0
        assert job.plan.loads()[0].path == "other"
