"""Batched registration: amortized order upkeep, identical results.

The repository integrates pending entries into the §3 scan order
either one at a time (``insort`` + repositioning per insert) or as a
batch (one total-order sort per flush).  The batch path exists purely
to amortize upkeep — it must be observationally equivalent:

* Hypothesis property: for any insert batch, ``ordered_entries()``
  after a flush equals the order produced by one-at-a-time inserts,
  and both equal the legacy two-pass O(n²) sort oracle;
* the amortization is real: a batch flush performs one sort and no
  single-entry integrations;
* removals and re-adds interleaved with batches stay consistent.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from test_fingerprint_index import (
    assert_index_consistent,
    legacy_two_pass_order,
    make_entry,
)

from repro.core.repository import Repository

# entry descriptors: pipeline spec indices + stats that exercise every
# component of the order key (score, io ratio, exec time, sequence)
entry_descriptor = st.tuples(
    st.lists(
        st.tuples(st.sampled_from(["filter", "project"]), st.integers(0, 2)),
        max_size=3,
    ),
    st.sampled_from(["ds0", "ds1"]),
    st.integers(100, 5000),  # input bytes
    st.integers(10, 500),  # output bytes
    st.integers(1, 40),  # exec time
)


def build_entries(descriptors):
    return [
        make_entry(
            specs,
            path=path,
            out=f"batch/o{i}",
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            exec_time=float(exec_time),
        )
        for i, (specs, path, input_bytes, output_bytes, exec_time) in enumerate(
            descriptors
        )
    ]


class TestBatchedRegistrationProperty:
    @given(st.lists(entry_descriptor, min_size=0, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_batch_flush_equals_one_at_a_time_inserts(self, descriptors):
        batch_repo = Repository()
        batch_repo.add_batch(build_entries(descriptors))
        batch_repo.flush()
        batch_order = [e.entry_id for e in batch_repo.ordered_entries()]

        serial_repo = Repository()
        for entry in build_entries(descriptors):
            serial_repo.add(entry)
            # force single-entry integration after every insert
            serial_repo.ordered_entries()
        serial_order = [e.entry_id for e in serial_repo.ordered_entries()]

        assert batch_order == serial_order
        # both agree with the historical two-pass sort oracle
        assert batch_order == legacy_two_pass_order(batch_repo)
        assert_index_consistent(batch_repo)
        assert_index_consistent(serial_repo)

    @given(
        st.lists(entry_descriptor, min_size=2, max_size=8),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_interleaved_removals_and_batches(self, descriptors, rng):
        repo = Repository()
        entries = build_entries(descriptors)
        split = len(entries) // 2
        repo.add_batch(entries[:split])
        repo.ordered_entries()
        victim = entries[rng.randrange(split)] if split else None
        if victim is not None:
            repo.remove(victim.entry_id)
        repo.add_batch(entries[split:])
        ordered_ids = [e.entry_id for e in repo.ordered_entries()]
        assert ordered_ids == legacy_two_pass_order(repo)
        assert_index_consistent(repo)


class TestBatchAmortization:
    def _random_entries(self, n, seed=5):
        rng = random.Random(seed)
        return build_entries(
            [
                (
                    [("filter", rng.randint(0, 2))],
                    f"ds{rng.randint(0, 1)}",
                    rng.randrange(100, 5000),
                    rng.randrange(10, 500),
                    rng.randint(1, 40),
                )
                for _ in range(n)
            ]
        )

    def test_batch_flush_pays_one_sort_not_n_insorts(self):
        repo = Repository()
        repo.add_batch(self._random_entries(12))
        repo.flush()
        assert repo.index_stats.batch_flushes == 1
        assert repo.index_stats.batch_entries == 12
        assert repo.index_stats.order_integrations == 0

    def test_single_insert_keeps_incremental_path(self):
        repo = Repository()
        for entry in self._random_entries(3):
            repo.add(entry)
            repo.ordered_entries()
        assert repo.index_stats.order_integrations == 3
        assert repo.index_stats.batch_flushes == 0

    def test_flush_is_idempotent_and_lazy_free(self):
        repo = Repository()
        repo.add_batch(self._random_entries(5))
        before = repo.index_stats.subsume_checks
        repo.flush()
        checks = repo.index_stats.subsume_checks
        assert checks >= before
        repo.flush()
        repo.ordered_entries()
        assert repo.index_stats.subsume_checks == checks

    def test_legacy_json_restores_via_batch(self):
        # the pre-snapshot entries-only JSON shape still loads, paying
        # one batched re-registration pass
        repo = Repository()
        repo.add_batch(self._random_entries(6))
        repo.flush()
        legacy = json.dumps({"entries": [e.to_dict() for e in repo.entries()]})
        restored = Repository.from_legacy_json(legacy)
        assert [e.entry_id for e in restored.ordered_entries()] == [
            e.entry_id for e in repo.ordered_entries()
        ]
        assert restored.index_stats.batch_flushes == 1
        assert_index_consistent(restored)

    def test_snapshot_restores_without_matcher_work(self):
        # the snapshot codec fast-restores the recorded order
        # directly: no flush, no traversals
        from repro.persistence.snapshot import RepositorySnapshot

        repo = Repository()
        repo.add_batch(self._random_entries(6))
        repo.flush()
        snapshot = RepositorySnapshot.capture(repo)
        restored = RepositorySnapshot.from_bytes(
            snapshot.to_bytes()
        ).restore_repository()
        assert [e.entry_id for e in restored.ordered_entries()] == [
            e.entry_id for e in repo.ordered_entries()
        ]
        assert restored.index_stats.batch_flushes == 0
        assert restored.index_stats.subsume_checks == 0
        assert_index_consistent(restored)

    def test_ordering_disabled_batches_never_pay_matcher(self):
        repo = Repository(ordering_enabled=False)
        repo.add_batch(self._random_entries(8))
        repo.flush()
        assert [e.entry_id for e in repo.ordered_entries()] == [
            f"entry_{i:06d}" for i in range(1, 9)
        ]
        assert repo.index_stats.subsume_checks == 0
        assert repo.index_stats.batch_flushes == 0
