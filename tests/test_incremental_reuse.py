"""End-to-end tests for delta-aware incremental recomputation: the
match-time staleness guard, the append fast path (rerun the tail,
UNION-merge with the stored output), the typed fallbacks, and the
eviction Rule 4 interaction."""

import pytest

from repro.core.eviction import InputModifiedEviction
from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import (
    DeltaFallback,
    EntryEvicted,
    EntryRefreshed,
    RewriteApplied,
)
from repro.pig.engine import PigServer

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"

FILTER_Q = f"""
A = load 'data/page_views' as ({PV});
B = filter A by action == 1;
store B into 'f_out';
"""

GROUP_Q = f"""
A = load 'data/page_views' as ({PV});
D = group A by user;
E = foreach D generate group, SUM(A.est_revenue);
store E into 'g_out';
"""

TAIL = "dave\t1\t105\t3.0\tinfoF\tlinksF\neve\t2\t106\t9.0\tinfoG\tlinksG\n"


def make(dfs, **config_kwargs):
    manager = ReStoreManager(dfs, config=ReStoreConfig(**config_kwargs))
    return PigServer(dfs, restore=manager), manager


def oracle_run(small_data, script, out):
    """The no-reuse answer over the *current* state of ``small_data``,
    computed on a fresh DFS so nothing leaks between engines."""
    dfs = DistributedFileSystem(n_datanodes=4, block_size=4 * 1024)
    for path in ("data/page_views", "data/users"):
        dfs.write_file(path, small_data.read_file(path))
    PigServer(dfs).run(script)
    return dfs.read_file(out)


def events_of(result, kind):
    return [e for e in result.events if isinstance(e, kind)]


class TestDeltaRefresh:
    def test_append_probe_refreshes_instead_of_recomputing(self, small_data):
        server, manager = make(small_data)
        server.run(FILTER_Q)
        small_data.append("data/page_views", TAIL)

        result = server.run(FILTER_Q)

        assert small_data.read_file("f_out") == oracle_run(
            small_data, FILTER_Q, "f_out"
        )
        assert manager.delta_refresh_count == 1
        refreshed = events_of(result, EntryRefreshed)
        assert len(refreshed) == 1
        assert refreshed[0].delta_records == 1  # only dave passes action==1
        rewrites = [e for e in events_of(result, RewriteApplied) if e.delta]
        assert len(rewrites) == 1
        assert "delta over appended tail" in rewrites[0].render()

    def test_refreshed_entry_answers_the_next_probe_outright(self, small_data):
        server, manager = make(small_data)
        server.run(FILTER_Q)
        small_data.append("data/page_views", TAIL)
        server.run(FILTER_Q)

        result = server.run(FILTER_Q)

        # the merged entry is now fresh over the grown input: no second
        # refresh, no fallback, and the answer still matches the oracle
        assert manager.delta_refresh_count == 1
        assert manager.delta_fallback_count == 0
        assert not events_of(result, EntryRefreshed)
        assert small_data.read_file("f_out") == oracle_run(
            small_data, FILTER_Q, "f_out"
        )

    def test_repeated_appends_refresh_repeatedly(self, small_data):
        server, manager = make(small_data)
        server.run(FILTER_Q)
        for i in range(3):
            small_data.append(
                "data/page_views",
                f"user{i}\t1\t{200 + i}\t1.0\tinfo\tlinks\n",
            )
            server.run(FILTER_Q)
        assert manager.delta_refresh_count == 3
        assert small_data.read_file("f_out") == oracle_run(
            small_data, FILTER_Q, "f_out"
        )

    def test_refresh_advances_repository_extents(self, small_data):
        server, manager = make(small_data)
        server.run(FILTER_Q)
        grown = small_data.append("data/page_views", TAIL).size
        server.run(FILTER_Q)
        entries = [
            e
            for e in manager.repository
            if "data/page_views" in e.input_extents
        ]
        assert entries
        assert all(
            e.input_extents["data/page_views"].size == grown for e in entries
        )


class TestDeltaFallback:
    def test_shuffle_probe_falls_back_with_typed_reason(self, small_data):
        server, manager = make(small_data)
        server.run(GROUP_Q)
        small_data.append("data/page_views", TAIL)

        result = server.run(GROUP_Q)

        fallbacks = events_of(result, DeltaFallback)
        assert fallbacks
        assert all(f.reason == "ineligible-chain" for f in fallbacks)
        assert manager.delta_refresh_count == 0
        # the condemned entry was evicted and the rerun is correct
        assert any(
            e.policy == "stale-input" for e in events_of(result, EntryEvicted)
        )
        assert small_data.read_file("g_out") == oracle_run(
            small_data, GROUP_Q, "g_out"
        )

    def test_disabled_delta_recomputes_fully_and_correctly(self, small_data):
        server, manager = make(small_data, delta_enabled=False)
        server.run(FILTER_Q)
        small_data.append("data/page_views", TAIL)

        result = server.run(FILTER_Q)

        fallbacks = events_of(result, DeltaFallback)
        assert fallbacks and fallbacks[0].reason == "delta-disabled"
        assert manager.delta_refresh_count == 0
        assert small_data.read_file("f_out") == oracle_run(
            small_data, FILTER_Q, "f_out"
        )

    def test_fallback_rerun_reregisters_fresh_state(self, small_data):
        server, manager = make(small_data)
        server.run(GROUP_Q)
        small_data.append("data/page_views", TAIL)
        server.run(GROUP_Q)

        # the rerun's registration covers the grown input: a third
        # probe reuses it outright with no fallback
        result = server.run(GROUP_Q)
        assert not events_of(result, DeltaFallback)
        assert manager.elimination_count >= 1


class TestStalenessGuard:
    """The regression the tentpole fixes: an input overwritten between
    two identical probes must never serve the first probe's bytes."""

    def test_overwrite_between_identical_probes(self, small_data):
        server, manager = make(small_data)
        first = server.run(FILTER_Q)
        assert len(first.outputs["f_out"]) == 3

        small_data.write_file(
            "data/page_views",
            "zed\t1\t100\t9.0\ti\tl\nyan\t2\t101\t1.0\ti\tl\n",
            overwrite=True,
        )
        result = server.run(FILTER_Q)

        assert result.outputs["f_out"] == [("zed", 1, 100, 9.0, "i", "l")]
        assert small_data.read_file("f_out") == oracle_run(
            small_data, FILTER_Q, "f_out"
        )
        assert any(
            e.policy == "stale-input" for e in events_of(result, EntryEvicted)
        )

    def test_deleted_input_condemns_instead_of_serving(self, small_data):
        server, manager = make(small_data)
        server.run(FILTER_Q)
        small_data.delete("data/page_views")
        small_data.write_file(
            "data/page_views", "zed\t1\t100\t9.0\ti\tl\n"
        )
        result = server.run(FILTER_Q)
        assert result.outputs["f_out"] == [("zed", 1, 100, 9.0, "i", "l")]

    def test_touch_alone_still_reuses(self, small_data):
        # mtime movement without content change must not break reuse:
        # identity (birth) and size pin the content exactly
        server, manager = make(small_data)
        server.run(FILTER_Q)
        small_data.namenode.touch("data/page_views")
        result = server.run(FILTER_Q)
        assert not any(
            e.policy == "stale-input" for e in events_of(result, EntryEvicted)
        )
        assert len(result.outputs["f_out"]) == 3


class TestEvictionRule4Appends:
    def test_append_keeps_delta_upgradeable_entries(self, small_data):
        server, manager = make(
            small_data, eviction_policies=[InputModifiedEviction()]
        )
        server.run(FILTER_Q)
        filter_entries = [
            e
            for e in manager.repository
            if "data/page_views" in e.input_extents
        ]
        assert filter_entries
        small_data.append("data/page_views", TAIL)
        manager.clock += 1
        evicted = {e.entry_id for e in manager.run_evictions()}
        kept = {e.entry_id for e in filter_entries} - evicted
        # at least the delta-upgradeable filter chain survives the sweep
        assert kept

    def test_overwrite_still_evicts(self, small_data):
        server, manager = make(
            small_data, eviction_policies=[InputModifiedEviction()]
        )
        server.run(FILTER_Q)
        assert len(manager.repository) > 0
        small_data.write_file(
            "data/page_views", "x\t1\t1\t1.0\ta\tb\n", overwrite=True
        )
        manager.clock += 1
        manager.run_evictions()
        assert not [
            e
            for e in manager.repository
            if "data/page_views" in e.input_extents
            or "data/page_views" in e.input_mtimes
        ]


class TestDeltaHygiene:
    def test_no_delta_temp_files_survive(self, small_data):
        server, manager = make(small_data)
        server.run(FILTER_Q)
        small_data.append("data/page_views", TAIL)
        server.run(FILTER_Q)
        assert not small_data.list_paths("restore/delta/")

    def test_delta_temp_paths_never_register(self, small_data):
        server, manager = make(small_data)
        server.run(FILTER_Q)
        small_data.append("data/page_views", TAIL)
        server.run(FILTER_Q)
        for entry in manager.repository:
            for path in entry.input_extents:
                assert not path.startswith("restore/delta/")
            for path in entry.input_mtimes:
                assert not path.startswith("restore/delta/")
