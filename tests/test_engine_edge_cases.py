"""Edge-case integration tests for the engine and reuse machinery."""


from repro.core.manager import ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.pig.engine import PigServer


def engine(rows, schema="u, n:int, v:double", path="d", block_size=64):
    dfs = DistributedFileSystem(n_datanodes=3, block_size=block_size)
    dfs.write_file(path, "".join(r + "\n" for r in rows))
    return dfs, PigServer(dfs), schema


class TestEmptyAndNullData:
    def test_empty_input_file(self):
        dfs, server, schema = engine([])
        result = server.run(f"""
            A = load 'd' as ({schema});
            B = filter A by n > 0;
            store B into 'out';
        """)
        assert result.outputs["out"] == []

    def test_empty_group_result(self):
        dfs, server, schema = engine(["a\t1\t2.0"])
        result = server.run(f"""
            A = load 'd' as ({schema});
            B = filter A by n > 99;
            D = group B by u;
            E = foreach D generate group, COUNT(B);
            store E into 'out';
        """)
        assert result.outputs["out"] == []

    def test_null_fields_flow_through(self):
        dfs, server, schema = engine(["a\t\t", "b\t2\t3.5"])
        result = server.run(f"""
            A = load 'd' as ({schema});
            B = foreach A generate u, n;
            store B into 'out';
        """)
        assert sorted(result.outputs["out"], key=repr) == sorted(
            [("a", None), ("b", 2)], key=repr
        )

    def test_null_join_keys_do_not_match(self):
        """SQL semantics: null keys join with nothing."""
        dfs = DistributedFileSystem(n_datanodes=3)
        dfs.write_file("l", "\t1\nx\t2\n")   # first row has null key
        dfs.write_file("r", "\t10\nx\t20\n")
        server = PigServer(dfs)
        result = server.run("""
            A = load 'l' as (k, a:int);
            B = load 'r' as (k2, b:int);
            C = join A by k, B by k2;
            store C into 'out';
        """)
        # nulls sort together in our shuffle, which would pair them —
        # but Pig drops null keys from inner joins.  Verify:
        rows = result.outputs["out"]
        assert all(r[0] is not None for r in rows)

    def test_null_key_preserved_side_of_outer_join(self):
        """A null-keyed row on the preserved side of an outer join
        survives, padded with nulls (it matches nothing)."""
        dfs = DistributedFileSystem(n_datanodes=3)
        dfs.write_file("l", "\t1\nx\t2\n")
        dfs.write_file("r", "x\t20\n")
        server = PigServer(dfs)
        result = server.run("""
            A = load 'l' as (k, a:int);
            B = load 'r' as (k2, b:int);
            C = join A by k left outer, B by k2;
            store C into 'out';
        """)
        rows = sorted(result.outputs["out"], key=repr)
        assert (None, 1, None, None) in rows     # preserved, unmatched
        assert ("x", 2, "x", 20) in rows

    def test_filter_on_null_is_dropped(self):
        dfs, server, schema = engine(["a\t\t1.0", "b\t2\t2.0"])
        result = server.run(f"""
            A = load 'd' as ({schema});
            B = filter A by n > 0;
            store B into 'out';
        """)
        assert result.outputs["out"] == [("b", 2, 2.0)]


class TestScaleAndBlocks:
    def test_multi_block_input(self):
        rows = [f"user{i:03d}\t{i}\t{i * 0.5}" for i in range(200)]
        dfs, server, schema = engine(rows, block_size=256)
        assert dfs.n_blocks("d") > 1
        result = server.run(f"""
            A = load 'd' as ({schema});
            D = group A by u;
            E = foreach D generate group, COUNT(A);
            store E into 'out';
        """)
        assert len(result.outputs["out"]) == 200

    def test_deep_workflow_chain(self):
        rows = [f"u{i % 3}\t{i}\t{float(i)}" for i in range(30)]
        dfs, server, schema = engine(rows)
        result = server.run(f"""
            A = load 'd' as ({schema});
            B = group A by u;
            C = foreach B generate group, SUM(A.v) as total;
            D = group C by total;
            E = foreach D generate group, COUNT(C);
            F = distinct E;
            G = order F by $0;
            store G into 'out';
        """)
        # 3 shuffles after the first group -> 4 jobs
        assert len(result.workflow.jobs) == 4
        assert len(result.outputs["out"]) > 0

    def test_limit_through_shuffle(self):
        rows = [f"u{i}\t{i}\t1.0" for i in range(20)]
        dfs, server, schema = engine(rows)
        result = server.run(f"""
            A = load 'd' as ({schema});
            D = group A by u;
            E = foreach D generate group, COUNT(A);
            F = limit E 5;
            store F into 'out';
        """)
        assert len(result.outputs["out"]) == 5


class TestReuseEdgeCases:
    def test_empty_stored_output_reused(self):
        """An empty sub-job output is still a correct reuse source."""
        rows = ["a\t1\t1.0"]
        dfs, server0, schema = engine(rows)
        manager = ReStoreManager(dfs)
        server = PigServer(dfs, restore=manager)
        query = f"""
            A = load 'd' as ({schema});
            B = filter A by n > 100;
            D = group B by u;
            E = foreach D generate group, COUNT(B);
            store E into 'OUT';
        """
        first = server.run(query.replace("OUT", "e1"))
        second = server.run(query.replace("OUT", "e2"))
        assert first.outputs["e1"] == []
        assert second.outputs["e2"] == []

    def test_three_statement_chain_rewrites_transitively(self):
        """Chained partial rewrites: filter entry then filter+project
        entry apply in sequence across repository scans."""
        rows = [f"u{i % 4}\t{i}\t{float(i)}" for i in range(24)]
        dfs, _, schema = engine(rows)
        manager = ReStoreManager(dfs)
        server = PigServer(dfs, restore=manager)
        base = f"""
            A = load 'd' as ({schema});
            B = filter A by n > 2;
            C = foreach B generate u, v;
        """
        server.run(base + "D = group C by u; E = foreach D generate group, SUM(C.v); store E into 'o1';")
        result = server.run(
            base + "D = group C by u; E = foreach D generate group, AVG(C.v); store E into 'o2';"
        )
        # reused at least the group sub-job
        assert ReStoreManager.legacy_strings(result.events)
        fresh = PigServer(dfs).run(
            base + "D = group C by u; E = foreach D generate group, AVG(C.v); store E into 'o3';"
        )
        assert sorted(result.outputs["o2"]) == sorted(fresh.outputs["o3"])

    def test_differing_constants_do_not_match(self):
        rows = [f"u{i % 4}\t{i}\t{float(i)}" for i in range(12)]
        dfs, _, schema = engine(rows)
        manager = ReStoreManager(dfs)
        server = PigServer(dfs, restore=manager)
        server.run(f"""
            A = load 'd' as ({schema});
            B = filter A by n > 2;
            store B into 'f1';
        """)
        result = server.run(f"""
            A = load 'd' as ({schema});
            B = filter A by n > 3;
            store B into 'f2';
        """)
        reuse_events = [
            line
            for line in ReStoreManager.legacy_strings(result.events)
            if "reused" in line or "whole job" in line
        ]
        assert not reuse_events  # different predicate: no reuse
        fresh = [r for r in result.outputs["f2"]]
        assert all(r[1] > 3 for r in fresh)

    def test_schema_width_mismatch_no_match(self):
        """Same path loaded with different declared schemas must not
        cross-match (Load signatures include the field layout)."""
        rows = [f"u{i}\t{i}\t{float(i)}" for i in range(6)]
        dfs, _, _ = engine(rows)
        manager = ReStoreManager(dfs)
        server = PigServer(dfs, restore=manager)
        server.run("""
            A = load 'd' as (u, n:int, v:double);
            B = foreach A generate u;
            C = distinct B;
            store C into 's1';
        """)
        result = server.run("""
            A = load 'd' as (u, n:int);
            B = foreach A generate u;
            C = distinct B;
            store C into 's2';
        """)
        reuse_events = [
            line
            for line in ReStoreManager.legacy_strings(result.events)
            if "reused" in line or "whole job" in line
        ]
        assert not reuse_events
