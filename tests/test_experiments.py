"""Shape tests for the paper-experiment harnesses (tiny configs).

These assert the *qualitative* claims of §7 — who wins, in which
direction the trends go — on small generated instances, which is
exactly what the reproduction promises.
"""

import pytest

from repro.experiments import (
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table1,
    table2,
)
from repro.experiments.common import arithmetic_mean
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.synthetic import SyntheticConfig

CFG = PigMixConfig(
    n_page_views=150, n_users=24, n_power_users=6, n_widerow=50, seed=5
)
SYNTH = SyntheticConfig(n_rows=600, seed=5)

QUICK = ["L2", "L3"]


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09.run(pigmix_config=CFG, queries=["L3", "L3a", "L11", "L11b"])

    def test_every_variant_speeds_up(self, result):
        for row in result.rows:
            if row["query"] == "AVG":
                continue
            assert row["speedup"] > 2.0, row

    def test_average_order_of_magnitude(self, result):
        avg = [r for r in result.rows if r["query"] == "AVG"][0]["speedup"]
        assert 3.0 < avg < 80.0  # paper: 9.8

    def test_reuse_time_nonzero(self, result):
        """Whole-job reuse still pays job startup (Fig 9 bars are not 0)."""
        for row in result.rows:
            if row["query"] == "AVG":
                continue
            assert row["reusing_jobs_min"] > 0


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(pigmix_config=CFG)

    def test_reuse_always_beats_no_reuse(self, result):
        for row in result.rows:
            if row["query"] == "AVG":
                continue
            assert row["speedup"] > 1.0, row

    def test_generating_always_costs(self, result):
        for row in result.rows:
            if row["query"] == "AVG":
                continue
            assert row["overhead"] > 1.0, row

    def test_average_bands(self, result):
        avg = [r for r in result.rows if r["query"] == "AVG"][0]
        assert 3.0 < avg["speedup"] < 80.0  # paper: 24.4
        assert 1.0 < avg["overhead"] < 3.5  # paper: 1.6


class TestFig11And12:
    @pytest.fixture(scope="class")
    def overhead(self):
        return fig11.run(pigmix_config=CFG, queries=QUICK)

    @pytest.fixture(scope="class")
    def speedup(self):
        return fig12.run(pigmix_config=CFG, queries=QUICK)

    def test_overhead_higher_at_small_scale(self, overhead):
        avg = [r for r in overhead.rows if r["query"] == "AVG"][0]
        assert avg["overhead_15GB"] > avg["overhead_150GB"]

    def test_speedup_higher_at_large_scale(self, speedup):
        avg = [r for r in speedup.rows if r["query"] == "AVG"][0]
        assert avg["speedup_150GB"] > avg["speedup_15GB"]

    def test_per_query_direction(self, overhead):
        for row in overhead.rows:
            if row["query"] == "AVG":
                continue
            assert row["overhead_15GB"] > row["overhead_150GB"], row


class TestFig13And14:
    @pytest.fixture(scope="class")
    def reuse(self):
        return fig13.run(pigmix_config=CFG, queries=["L3", "L6"])

    @pytest.fixture(scope="class")
    def store(self):
        return fig14.run(pigmix_config=CFG, queries=["L3", "L6"])

    def test_ha_at_least_as_good_as_hc(self, reuse):
        # small tolerance: at tiny generated sizes, loading a stored
        # bag-serialized Group output from one map task can cost a few
        # seconds more than HC's recompute-from-projection path
        for row in reuse.rows:
            assert row["reuse_HA_min"] <= row["reuse_HC_min"] * 1.15, row

    def test_ha_clearly_beats_hc_on_group_heavy_query(self, reuse):
        l6 = [r for r in reuse.rows if r["query"] == "L6"][0]
        assert l6["reuse_HA_min"] < l6["reuse_HC_min"]

    def test_ha_close_to_nh(self, reuse):
        for row in reuse.rows:
            assert row["reuse_HA_min"] <= row["reuse_NH_min"] * 1.25, row

    def test_nh_store_time_worst(self, store):
        for row in store.rows:
            assert row["store_NH_min"] >= row["store_HA_min"] - 1e-9, row
            assert row["store_NH_min"] >= row["store_HC_min"] - 1e-9, row

    def test_hc_store_cheapest(self, store):
        for row in store.rows:
            assert row["store_HC_min"] <= row["store_HA_min"] + 1e-9, row


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(pigmix_config=CFG, queries=["L2", "L3", "L6"])

    def test_hc_at_most_ha_at_most_nh(self, result):
        for row in result.rows:
            assert row["HC_GB"] <= row["HA_GB"] + 1e-9, row
            assert row["HA_GB"] <= row["NH_GB"] + 1e-9, row

    def test_stored_bytes_much_smaller_than_input(self, result):
        for row in result.rows:
            assert row["HA_GB"] < row["input_GB"] * 0.5, row

    def test_l6_ha_exceeds_hc(self, result):
        l6 = [r for r in result.rows if r["query"] == "L6"][0]
        assert l6["HA_GB"] > l6["HC_GB"] * 1.5


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self):
        return fig15.run(pigmix_config=CFG, queries=["L3", "L11"])

    def test_all_reuse_modes_beat_no_reuse(self, result):
        for row in result.rows:
            for column in ("subjob_HC_min", "subjob_HA_min", "whole_job_min"):
                assert row[column] < row["no_reuse_min"], (row, column)

    def test_ha_close_to_whole_job(self, result):
        """The paper's key Fig 15 observation."""
        for row in result.rows:
            assert row["subjob_HA_min"] <= row["whole_job_min"] * 3.0, row


class TestTable2:
    def test_selectivities_match_paper(self):
        result = table2.run(SyntheticConfig(n_rows=2000, seed=5))
        for row in result.rows:
            assert row["measured_selected_pct"] == pytest.approx(
                row["paper_selected_pct"], rel=0.5, abs=1.0
            ), row


class TestFig16And17:
    @pytest.fixture(scope="class")
    def projection(self):
        return fig16.run(SYNTH)

    @pytest.fixture(scope="class")
    def filtering(self):
        return fig17.run(SYNTH)

    def test_projection_overhead_rises_with_kept_data(self, projection):
        overheads = [r["overhead"] for r in projection.rows]
        assert overheads[-1] > overheads[0]

    def test_projection_speedup_falls_with_kept_data(self, projection):
        speedups = [r["speedup"] for r in projection.rows]
        assert speedups[0] > speedups[-1]

    def test_projection_percentages_increase(self, projection):
        pcts = [r["projected_pct"] for r in projection.rows]
        assert pcts == sorted(pcts)
        assert 10 < pcts[0] < 30      # paper: ~18% at one field
        assert 55 < pcts[-1] < 90     # paper: ~74% at five fields

    def test_filter_speedup_falls_as_more_kept(self, filtering):
        first = filtering.rows[0]["speedup"]   # 0.5% kept
        last = filtering.rows[-1]["speedup"]   # 60% kept
        assert first > last

    def test_filter_overhead_rises_as_more_kept(self, filtering):
        first = filtering.rows[0]["overhead"]
        last = filtering.rows[-1]["overhead"]
        assert last > first

    def test_reuse_beneficial_at_high_reduction(self, filtering):
        assert filtering.rows[0]["speedup"] > 1.5


class TestFormatting:
    def test_format_table_renders(self):
        result = table2.run(SyntheticConfig(n_rows=200, seed=5))
        text = result.format_table()
        assert "Table 2" in text
        assert "field6" in text
        assert "paper:" in text

    def test_mean_helpers(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert arithmetic_mean([None, 4.0]) == 4.0
        assert arithmetic_mean([]) == 0.0
