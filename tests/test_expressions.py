"""Unit tests for repro.relational.expressions."""

import pytest

from repro.exceptions import ExpressionError
from repro.relational.expressions import (
    AggCall,
    BagField,
    BagStar,
    BinaryOp,
    Column,
    Const,
    FuncCall,
    UnaryOp,
    expression_from_dict,
)
from repro.relational.tuples import Bag


class TestColumnAndConst:
    def test_column_eval(self):
        assert Column(1).eval(("a", "b")) == "b"

    def test_const_eval(self):
        assert Const(42).eval(()) == 42

    def test_column_fingerprint_ignores_name(self):
        assert Column(0, "x").fingerprint() == Column(0, "y").fingerprint()

    def test_references(self):
        assert Column(2).references() == frozenset((2,))
        assert Const(1).references() == frozenset()


class TestBinaryOp:
    def test_arithmetic(self):
        expr = BinaryOp("+", Column(0), Const(10))
        assert expr.eval((5,)) == 15

    def test_comparison(self):
        expr = BinaryOp(">", Column(0), Const(3))
        assert expr.eval((5,)) is True
        assert expr.eval((1,)) is False

    def test_division_by_zero_is_null(self):
        expr = BinaryOp("/", Const(1), Const(0))
        assert expr.eval(()) is None

    def test_null_propagation(self):
        expr = BinaryOp("+", Column(0), Const(1))
        assert expr.eval((None,)) is None

    def test_and_or(self):
        t, f = Const(True), Const(False)
        assert BinaryOp("and", t, f).eval(()) is False
        assert BinaryOp("or", t, f).eval(()) is True

    def test_unknown_op_rejected(self):
        with pytest.raises(ExpressionError):
            BinaryOp("**", Const(1), Const(2))

    def test_references_union(self):
        expr = BinaryOp("+", Column(0), Column(3))
        assert expr.references() == frozenset((0, 3))


class TestUnaryOp:
    def test_not(self):
        assert UnaryOp("not", Const(True)).eval(()) is False

    def test_neg(self):
        assert UnaryOp("neg", Const(5)).eval(()) == -5

    def test_isnull(self):
        assert UnaryOp("isnull", Column(0)).eval((None,)) is True
        assert UnaryOp("isnull", Column(0)).eval((1,)) is False

    def test_notnull(self):
        assert UnaryOp("notnull", Column(0)).eval((None,)) is False

    def test_not_of_null_is_null(self):
        assert UnaryOp("not", Column(0)).eval((None,)) is None


class TestFuncCall:
    def test_concat(self):
        expr = FuncCall("CONCAT", (Column(0), Const("!")))
        assert expr.eval(("hi",)) == "hi!"

    def test_upper_lower(self):
        assert FuncCall("UPPER", (Const("ab"),)).eval(()) == "AB"
        assert FuncCall("LOWER", (Const("AB"),)).eval(()) == "ab"

    def test_size(self):
        assert FuncCall("SIZE", (Const("abc"),)).eval(()) == 3

    def test_null_safe(self):
        assert FuncCall("UPPER", (Const(None),)).eval(()) is None

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            FuncCall("NOPE", ())

    def test_round(self):
        assert FuncCall("ROUND", (Const(2.6),)).eval(()) == 3


class TestAggregates:
    def _row(self):
        return ("key", Bag([("a", 1.0), ("b", 3.0), ("c", None)]))

    def test_sum_skips_nulls(self):
        expr = AggCall("SUM", BagField(1, 1))
        assert expr.eval(self._row()) == 4.0

    def test_count_skips_nulls(self):
        expr = AggCall("COUNT", BagField(1, 1))
        assert expr.eval(self._row()) == 2

    def test_count_star(self):
        expr = AggCall("COUNT_STAR", BagStar(1))
        assert expr.eval(self._row()) == 3

    def test_avg(self):
        expr = AggCall("AVG", BagField(1, 1))
        assert expr.eval(self._row()) == 2.0

    def test_min_max(self):
        assert AggCall("MIN", BagField(1, 1)).eval(self._row()) == 1.0
        assert AggCall("MAX", BagField(1, 1)).eval(self._row()) == 3.0

    def test_sum_of_empty_bag_is_null(self):
        row = ("key", Bag())
        assert AggCall("SUM", BagField(1, 0)).eval(row) is None

    def test_count_of_empty_bag_is_zero(self):
        row = ("key", Bag())
        assert AggCall("COUNT", BagField(1, 0)).eval(row) == 0

    def test_bagfield_eval_on_none(self):
        assert BagField(1, 0).eval(("k", None)) == []

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ExpressionError):
            AggCall("MEDIAN", BagStar(1))


class TestSerialization:
    @pytest.mark.parametrize(
        "expr",
        [
            Column(3, "x"),
            Const("hello"),
            Const(2.5),
            BinaryOp("<=", Column(0), Const(5)),
            UnaryOp("isnull", Column(1)),
            FuncCall("CONCAT", (Column(0), Const("a"))),
            AggCall("SUM", BagField(1, 2)),
            AggCall("COUNT_STAR", BagStar(1)),
        ],
    )
    def test_round_trip(self, expr):
        restored = expression_from_dict(expr.to_dict())
        assert restored.fingerprint() == expr.fingerprint()

    def test_equality_by_fingerprint(self):
        a = BinaryOp("+", Column(0), Const(1))
        b = BinaryOp("+", Column(0, "other_name"), Const(1))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert BinaryOp("+", Column(0), Const(1)) != BinaryOp(
            "+", Column(0), Const(2)
        )
