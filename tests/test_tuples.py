"""Unit tests for repro.relational.tuples (rows, bags, PigStorage)."""

from repro.relational.schema import FieldSchema, Schema
from repro.relational.tuples import (
    Bag,
    deserialize_row,
    deserialize_rows,
    serialize_row,
    serialize_rows,
)
from repro.relational.types import DataType


class TestBag:
    def test_append_and_len(self):
        bag = Bag()
        bag.append(("a", 1))
        bag.append(("b", 2))
        assert len(bag) == 2

    def test_iteration_order_preserved(self):
        bag = Bag([("b",), ("a",)])
        assert list(bag) == [("b",), ("a",)]

    def test_project(self):
        bag = Bag([("a", 1), ("b", 2)])
        assert bag.project(1) == [1, 2]

    def test_equality_with_list(self):
        assert Bag([("a",)]) == [("a",)]

    def test_equality_with_bag(self):
        assert Bag([("a",)]) == Bag([("a",)])

    def test_repr_truncates(self):
        bag = Bag([(i,) for i in range(10)])
        assert "n=10" in repr(bag)


class TestSerializeRow:
    def test_simple(self):
        assert serialize_row(("a", 1, 2.5)) == "a\t1\t2.5"

    def test_none_fields(self):
        assert serialize_row(("a", None, "b")) == "a\t\tb"

    def test_bag_field(self):
        row = ("k", Bag([("a", 1), ("b", 2)]))
        assert serialize_row(row) == "k\t{(a,1),(b,2)}"

    def test_empty_bag(self):
        assert serialize_row(("k", Bag())) == "k\t{}"


class TestDeserializeRow:
    def test_typed_fields(self):
        schema = Schema.of(
            ("user", DataType.CHARARRAY),
            ("n", DataType.INT),
            ("rev", DataType.DOUBLE),
        )
        assert deserialize_row("bob\t3\t1.5", schema) == ("bob", 3, 1.5)

    def test_missing_trailing_fields_are_null(self):
        schema = Schema.of(("a", DataType.CHARARRAY), ("b", DataType.INT))
        assert deserialize_row("x", schema) == ("x", None)

    def test_empty_field_is_null(self):
        schema = Schema.of(("a", DataType.CHARARRAY), ("b", DataType.INT))
        assert deserialize_row("x\t", schema) == ("x", None)

    def test_bag_field_with_inner_schema(self):
        inner = Schema.of(("name", DataType.CHARARRAY), ("n", DataType.INT))
        schema = Schema(
            (
                FieldSchema("group", DataType.CHARARRAY),
                FieldSchema("items", DataType.BAG, inner),
            )
        )
        row = deserialize_row("g\t{(a,1),(b,2)}", schema)
        assert row[0] == "g"
        assert isinstance(row[1], Bag)
        assert list(row[1]) == [("a", 1), ("b", 2)]


class TestRoundTrip:
    def test_rows_round_trip(self):
        schema = Schema.of(("a", DataType.CHARARRAY), ("n", DataType.INT))
        rows = [("x", 1), ("y", 2), ("z", None)]
        text = serialize_rows(rows)
        assert deserialize_rows(text, schema) == rows

    def test_empty_rows(self):
        assert serialize_rows([]) == ""
        assert deserialize_rows("", Schema.of("a")) == []

    def test_grouped_round_trip(self):
        """The repository stores grouped (bag-valued) outputs; they must
        survive a store/load cycle — this is what lets ReStore reuse
        Group outputs (paper Figure 4)."""
        inner = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))
        schema = Schema(
            (
                FieldSchema("group", DataType.CHARARRAY),
                FieldSchema("vals", DataType.BAG, inner),
            )
        )
        rows = [
            ("a", Bag([("a", 1.5), ("a", 2.5)])),
            ("b", Bag([("b", 4.0)])),
        ]
        text = serialize_rows(rows)
        restored = deserialize_rows(text, schema)
        assert restored[0][0] == "a"
        assert list(restored[0][1]) == [("a", 1.5), ("a", 2.5)]
        assert list(restored[1][1]) == [("b", 4.0)]
