"""Unit tests for repro.relational.tuples (rows, bags, PigStorage)."""

from repro.relational.schema import FieldSchema, Schema
from repro.relational.tuples import (
    Bag,
    deserialize_row,
    deserialize_rows,
    serialize_row,
    serialize_rows,
)
from repro.relational.types import DataType


class TestBag:
    def test_append_and_len(self):
        bag = Bag()
        bag.append(("a", 1))
        bag.append(("b", 2))
        assert len(bag) == 2

    def test_iteration_order_preserved(self):
        bag = Bag([("b",), ("a",)])
        assert list(bag) == [("b",), ("a",)]

    def test_project(self):
        bag = Bag([("a", 1), ("b", 2)])
        assert bag.project(1) == [1, 2]

    def test_equality_with_list(self):
        assert Bag([("a",)]) == [("a",)]

    def test_equality_with_bag(self):
        assert Bag([("a",)]) == Bag([("a",)])

    def test_repr_truncates(self):
        bag = Bag([(i,) for i in range(10)])
        assert "n=10" in repr(bag)


class TestSerializeRow:
    def test_simple(self):
        assert serialize_row(("a", 1, 2.5)) == "a\t1\t2.5"

    def test_none_fields(self):
        assert serialize_row(("a", None, "b")) == "a\t\tb"

    def test_bag_field(self):
        row = ("k", Bag([("a", 1), ("b", 2)]))
        assert serialize_row(row) == "k\t{(a,1),(b,2)}"

    def test_empty_bag(self):
        assert serialize_row(("k", Bag())) == "k\t{}"


class TestDeserializeRow:
    def test_typed_fields(self):
        schema = Schema.of(
            ("user", DataType.CHARARRAY),
            ("n", DataType.INT),
            ("rev", DataType.DOUBLE),
        )
        assert deserialize_row("bob\t3\t1.5", schema) == ("bob", 3, 1.5)

    def test_missing_trailing_fields_are_null(self):
        schema = Schema.of(("a", DataType.CHARARRAY), ("b", DataType.INT))
        assert deserialize_row("x", schema) == ("x", None)

    def test_empty_field_is_null(self):
        schema = Schema.of(("a", DataType.CHARARRAY), ("b", DataType.INT))
        assert deserialize_row("x\t", schema) == ("x", None)

    def test_bag_field_with_inner_schema(self):
        inner = Schema.of(("name", DataType.CHARARRAY), ("n", DataType.INT))
        schema = Schema(
            (
                FieldSchema("group", DataType.CHARARRAY),
                FieldSchema("items", DataType.BAG, inner),
            )
        )
        row = deserialize_row("g\t{(a,1),(b,2)}", schema)
        assert row[0] == "g"
        assert isinstance(row[1], Bag)
        assert list(row[1]) == [("a", 1), ("b", 2)]


class TestRoundTrip:
    def test_rows_round_trip(self):
        schema = Schema.of(("a", DataType.CHARARRAY), ("n", DataType.INT))
        rows = [("x", 1), ("y", 2), ("z", None)]
        text = serialize_rows(rows)
        assert deserialize_rows(text, schema) == rows

    def test_empty_rows(self):
        assert serialize_rows([]) == ""
        assert deserialize_rows("", Schema.of("a")) == []

    def test_grouped_round_trip(self):
        """The repository stores grouped (bag-valued) outputs; they must
        survive a store/load cycle — this is what lets ReStore reuse
        Group outputs (paper Figure 4)."""
        inner = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))
        schema = Schema(
            (
                FieldSchema("group", DataType.CHARARRAY),
                FieldSchema("vals", DataType.BAG, inner),
            )
        )
        rows = [
            ("a", Bag([("a", 1.5), ("a", 2.5)])),
            ("b", Bag([("b", 4.0)])),
        ]
        text = serialize_rows(rows)
        restored = deserialize_rows(text, schema)
        assert restored[0][0] == "a"
        assert list(restored[0][1]) == [("a", 1.5), ("a", 2.5)]
        assert list(restored[1][1]) == [("b", 4.0)]


class TestRetypeRowsTypedPassThrough:
    """_retype_rows must not round-trip already-typed values through
    ``str`` — an int in a double-typed field would silently become a
    float, and a string that looks numeric would change type."""

    def test_typed_values_pass_through_unchanged(self):
        from repro.relational.tuples import _retype_rows

        inner = Schema.of(("n", DataType.DOUBLE), ("s", DataType.CHARARRAY))
        typed = _retype_rows([(3, "07")], inner)
        assert typed == [(3, "07")]
        assert type(typed[0][0]) is int  # not coerced to 3.0

    def test_string_values_still_parse(self):
        from repro.relational.tuples import _retype_rows

        inner = Schema.of(("n", DataType.DOUBLE), ("m", DataType.INT))
        assert _retype_rows([("3.5", "4")], inner) == [(3.5, 4)]

    def test_bag_of_typed_rows_survives_deserialize_helpers(self):
        inner = Schema.of(("n", DataType.INT), ("r", DataType.DOUBLE))
        schema = Schema(
            (
                FieldSchema("g", DataType.CHARARRAY),
                FieldSchema("items", DataType.BAG, inner),
            )
        )
        row = ("k", Bag([(1, 2.5), (None, 0.5)]))
        restored = deserialize_row(serialize_row(row), schema)
        assert restored == row
        assert [type(v) for v in list(restored[1])[0]] == [int, float]


class TestSerializedRowSize:
    CASES = [
        (),
        ("a",),
        (None,),
        ("alice", 1, 0.5),
        (None, None, None),
        ("k", Bag([("a", 1), ("b", 2.5), (None, None)])),
        ("k", Bag([])),
        (True, False),
        (-17, 10**12, 1e-7),
        ((1, "x"), [("y", 2)], "tail"),
        ("héllo", 1),
        # a Bag nested inside a tuple field falls through format_value
        # to str(); the sizer must track even that rendering exactly
        (("k", Bag([("a", 1)])), 2),
        ([("a", Bag([("b",)]))],),
    ]

    def test_matches_serialize_row_length(self):
        from repro.relational.tuples import serialized_row_size

        for row in self.CASES:
            assert serialized_row_size(row) == len(serialize_row(row)), row

    def test_canonical_ascii_size_matches_encoded_bytes(self):
        from repro.dfs.dataset import canonical_ascii_size
        from repro.relational.schema import Schema
        from repro.relational.types import DataType

        schema = Schema.of(
            ("u", DataType.CHARARRAY), ("n", DataType.INT), ("r", DataType.DOUBLE)
        )
        rows = (("alice", 1, 0.5), (None, None, None), ("bob", -3, 2.25))
        size = canonical_ascii_size(rows, schema)
        assert size == len(serialize_rows(rows).encode())
        assert canonical_ascii_size((), schema) == 0

    def test_canonical_ascii_size_refuses_non_ascii(self):
        from repro.dfs.dataset import canonical_ascii_size
        from repro.relational.schema import Schema
        from repro.relational.types import DataType

        schema = Schema.of(("u", DataType.CHARARRAY), ("n", DataType.INT))
        assert canonical_ascii_size((("héllo", 1),), schema) is None
