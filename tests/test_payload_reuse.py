"""Serialized-payload reuse + subset sizing for copy-style stores.

``write_rows(source=...)`` lets a store whose input rows provably came
from an existing file skip re-serialization: a pure pass-through
clones the producer's (possibly still lazy) payload, and a filtered
identity-subset is sized columnar-ly without re-checking canonicality.
These tests pin the reuse preconditions (identity, generation, exact
serialization), the counter parity with a re-serializing twin, and
the end-to-end behaviour of whole-job copy rewrites.
"""

from repro.core.manager import ReStoreConfig
from repro.dfs.filesystem import DistributedFileSystem
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.session import ReStoreSession

SCHEMA = Schema.of(
    ("u", DataType.CHARARRAY), ("a", DataType.INT), ("r", DataType.DOUBLE)
)
ROWS = [
    ("alice", 1, 0.5),
    ("bob", 2, 4.5),
    (None, 3, None),
    ("carol", 44, 8.25),
]


def _twin_write(rows, schema):
    """Bytes + counters of a fresh DFS writing *rows* the normal way."""
    dfs = DistributedFileSystem(n_datanodes=3)
    dfs.write_rows("twin", rows, schema)
    return (
        dfs.read_file("twin"),
        dfs.bytes_written,
        dfs.replica_bytes_written,
        dfs.file_size("twin"),
    )


class TestPayloadClone:
    def test_clone_shares_the_producers_payload(self):
        dfs = DistributedFileSystem(n_datanodes=3)
        dfs.write_rows("src", ROWS, SCHEMA)
        rows = dfs.read_rows("src", SCHEMA)
        dfs.write_rows("dst", list(rows), SCHEMA, source="src")
        assert dfs.payload_reuses == 1
        src_inode = dfs.namenode.lookup("src")
        dst_inode = dfs.namenode.lookup("dst")
        assert dst_inode.payload is src_inode.payload  # one shared buffer
        # materializing both files renders the text exactly once
        assert dfs.serializations == 0
        assert dfs.read_file("dst") == dfs.read_file("src")
        assert dfs.serializations == 1

    def test_clone_counters_match_a_reserializing_twin(self):
        dfs = DistributedFileSystem(n_datanodes=3)
        dfs.write_rows("src", ROWS, SCHEMA)
        baseline_written = dfs.bytes_written
        baseline_replicas = dfs.replica_bytes_written
        rows = dfs.read_rows("src", SCHEMA)
        status = dfs.write_rows("dst", list(rows), SCHEMA, source="src")
        twin_bytes, twin_written, twin_replicas, twin_size = _twin_write(
            ROWS, SCHEMA
        )
        assert status.size == twin_size
        assert dfs.bytes_written - baseline_written == twin_written
        assert dfs.replica_bytes_written - baseline_replicas == twin_replicas
        assert dfs.read_file("dst") == twin_bytes

    def test_generation_bump_invalidates_reuse(self):
        dfs = DistributedFileSystem(n_datanodes=3)
        dfs.write_rows("src", ROWS, SCHEMA)
        rows = list(dfs.read_rows("src", SCHEMA))
        dfs.append("src", "dave\t5\t1.5\n")  # bumps the generation
        dfs.write_rows("dst", rows, SCHEMA, source="src")
        assert dfs.payload_reuses == 0
        assert dfs.read_file("dst")  # written via the normal path

    def test_non_identical_rows_do_not_clone(self):
        dfs = DistributedFileSystem(n_datanodes=3)
        dfs.write_rows("src", ROWS, SCHEMA)
        fresh = [tuple(row) for row in dfs.read_rows("src", SCHEMA)]
        # equal values, different objects for one row: full-clone
        # identity fails; the subset check also rejects foreign ids
        # (built via tuple() so the literal is not constant-folded
        # into the very object the module already shares)
        fresh[0] = tuple(["alice", 1, 0.5])
        dfs.write_rows("dst", fresh, SCHEMA, source="src")
        assert dfs.payload_reuses == 0
        assert dfs.read_file("dst") == dfs.read_file("src")

    def test_parse_filled_datasets_are_not_exact_sources(self):
        dfs = DistributedFileSystem(n_datanodes=3)
        # "03" parses to 3 which re-renders as "3": cloning the text
        # would diverge from what serializing the rows produces
        dfs.write_file("src", "alice\t03\t0.5\n")
        rows = dfs.read_rows("src", SCHEMA)
        dfs.write_rows("dst", list(rows), SCHEMA, source="src")
        assert dfs.payload_reuses == 0
        assert dfs.read_file("dst") == b"alice\t3\t0.5\n"

    def test_reuse_payload_flag_disables_cloning(self):
        dfs = DistributedFileSystem(n_datanodes=3)
        dfs.write_rows("src", ROWS, SCHEMA)
        rows = dfs.read_rows("src", SCHEMA)
        dfs.write_rows("dst", list(rows), SCHEMA, source="src", reuse_payload=False)
        assert dfs.payload_reuses == 0
        assert dfs.read_file("dst") == dfs.read_file("src")

    def test_missing_or_unpinned_source_falls_back(self):
        dfs = DistributedFileSystem(n_datanodes=3)
        dfs.write_rows("dst", ROWS, SCHEMA, source="nowhere")
        assert dfs.payload_reuses == 0
        assert dfs.file_size("dst") > 0


class TestSubsetSizing:
    def test_filtered_subset_writes_identically_to_twin(self):
        dfs = DistributedFileSystem(n_datanodes=3)
        dfs.write_rows("src", ROWS, SCHEMA)
        rows = dfs.read_rows("src", SCHEMA)
        subset = [row for row in rows if row[1] > 1]
        status = dfs.write_rows("sub", subset, SCHEMA, source="src")
        twin_bytes, _, _, twin_size = _twin_write(subset, SCHEMA)
        assert status.size == twin_size
        assert dfs.read_file("sub") == twin_bytes
        # the subset path proves canonicality by identity: the rows
        # are pinned without any re-check and stay cache-served
        inode = dfs.namenode.lookup("sub")
        dataset = inode.datasets[SCHEMA.fingerprint()]
        assert dataset.exact and dataset.ascii_sized
        assert dfs.read_rows("sub", SCHEMA) == tuple(subset)

    def test_subset_path_respects_columnar_flag(self):
        dfs = DistributedFileSystem(n_datanodes=3)
        dfs.write_rows("src", ROWS, SCHEMA)
        rows = dfs.read_rows("src", SCHEMA)
        subset = [row for row in rows if row[1] > 1]
        # per-row plane (columnar off): subset shortcut must not run,
        # but the write is still byte-identical
        dfs.write_rows("sub", subset, SCHEMA, source="src", columnar=False)
        twin_bytes, _, _, _ = _twin_write(subset, SCHEMA)
        assert dfs.read_file("sub") == twin_bytes


class TestEndToEndCopyRewrites:
    SCRIPT = (
        "A = load 'data/ev' as (u:chararray, a:int, r:double);\n"
        "B = filter A by a > 1;\n"
        "C = group B by u;\n"
        "D = foreach C generate group, COUNT(B);\n"
    )

    def _run(self, **config_kwargs):
        config = ReStoreConfig(**config_kwargs)
        with ReStoreSession(datanodes=3, config=config) as session:
            session.write_file(
                "data/ev", "u1\t5\t1.5\nu2\t2\t0.5\nu1\t9\t2.25\nu3\t7\t0.75\n"
            )
            session.run(self.SCRIPT + "store D into 'out/first';", name="first")
            result = session.run(
                self.SCRIPT + "store D into 'out/second';", name="second"
            )
            snapshot = {
                path: session.dfs.read_file(path)
                for path in session.dfs.list_paths()
            }
            return session.dfs.payload_reuses, snapshot, result

    def test_whole_job_copy_rewrite_never_reserializes(self):
        reuses, snapshot, result = self._run()
        assert reuses == 1
        assert any(
            "whole_job=True" in repr(e) or getattr(e, "whole_job", False)
            for e in result.events
        )
        assert snapshot["out/second"] == snapshot["out/first"]

    def test_ablation_knob_produces_identical_bytes_without_reuse(self):
        on_reuses, on_snapshot, _ = self._run()
        off_reuses, off_snapshot, _ = self._run(payload_reuse=False)
        assert on_reuses == 1 and off_reuses == 0
        assert on_snapshot == off_snapshot
