"""Unit tests for the ReStore repository (ordering, stats, persistence)."""

import pytest

from repro.core.matcher import PlanMatcher
from repro.core.repository import EntryStats, Repository, RepositoryEntry
from repro.exceptions import RepositoryError
from repro.pig.physical.operators import POFilter, POForEach, POLoad, POStore
from repro.pig.physical.plan import linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import Schema
from repro.relational.types import DataType

SCHEMA = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))


def make_entry(
    n_ops=1,
    output_path="stored/x",
    input_bytes=1000,
    output_bytes=100,
    exec_time=10.0,
    path="pv",
):
    """Build an entry whose plan has *n_ops* pipeline operators."""
    ops = [POLoad(path, SCHEMA)]
    if n_ops >= 1:
        ops.append(POFilter(BinaryOp(">", Column(1), Const(1.0)), schema=SCHEMA))
    if n_ops >= 2:
        ops.append(POForEach([Column(0)], [False], ["u"], schema=SCHEMA.project([0])))
    ops.append(POStore(output_path, SCHEMA))
    return RepositoryEntry(
        plan=linear_plan(*ops),
        output_path=output_path,
        output_schema=SCHEMA,
        stats=EntryStats(
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            exec_time_s=exec_time,
        ),
    )


class TestBasics:
    def test_add_and_get(self):
        repo = Repository()
        entry = repo.add(make_entry())
        assert repo.get(entry.entry_id) is entry
        assert len(repo) == 1

    def test_remove(self):
        repo = Repository()
        entry = repo.add(make_entry())
        repo.remove(entry.entry_id)
        assert len(repo) == 0

    def test_get_missing(self):
        with pytest.raises(RepositoryError):
            Repository().get("nope")

    def test_total_stored_bytes(self):
        repo = Repository()
        repo.add(make_entry(output_bytes=100))
        repo.add(make_entry(output_path="stored/y", output_bytes=50))
        assert repo.total_stored_bytes == 150

    def test_find_by_output_path(self):
        repo = Repository()
        entry = repo.add(make_entry(output_path="stored/z"))
        assert repo.find_by_output_path("stored/z") is entry
        assert repo.find_by_output_path("nope") is None

    def test_find_equivalent(self):
        repo = Repository()
        repo.add(make_entry())
        duplicate = make_entry(output_path="stored/other")
        assert repo.find_equivalent(duplicate.plan) is not None

    def test_find_equivalent_differs(self):
        repo = Repository()
        repo.add(make_entry(path="pv"))
        other = make_entry(path="different")
        assert repo.find_equivalent(other.plan) is None

    def test_mark_used(self):
        entry = make_entry()
        entry.mark_used(5)
        assert entry.use_count == 1
        assert entry.last_used_at == 5


class TestOrdering:
    def test_subsuming_plan_first(self):
        """§3 rule 1: plan A before plan B when A subsumes B — the
        filter+project plan must be scanned before the bare filter."""
        repo = Repository(PlanMatcher())
        small = repo.add(make_entry(n_ops=1, output_path="s/f"))
        big = repo.add(make_entry(n_ops=2, output_path="s/fp"))
        ordered = repo.ordered_entries()
        assert ordered.index(big) < ordered.index(small)

    def test_metric_tiebreak_io_ratio(self):
        """§3 rule 2a: higher input/output ratio first."""
        repo = Repository()
        low = repo.add(
            make_entry(path="a", output_path="s/1", input_bytes=100, output_bytes=90)
        )
        high = repo.add(
            make_entry(path="b", output_path="s/2", input_bytes=100, output_bytes=10)
        )
        ordered = repo.ordered_entries()
        assert ordered.index(high) < ordered.index(low)

    def test_metric_tiebreak_exec_time(self):
        """§3 rule 2b: among equal ratios, longer execution first."""
        repo = Repository()
        quick = repo.add(
            make_entry(path="a", output_path="s/1", exec_time=1.0)
        )
        slow = repo.add(
            make_entry(path="b", output_path="s/2", exec_time=100.0)
        )
        ordered = repo.ordered_entries()
        assert ordered.index(slow) < ordered.index(quick)

    def test_order_cache_invalidation(self):
        repo = Repository()
        repo.add(make_entry(output_path="s/1"))
        first = repo.ordered_entries()
        repo.add(make_entry(n_ops=2, path="q", output_path="s/2"))
        second = repo.ordered_entries()
        assert len(second) == 2
        assert len(first) == 1


def _snapshot_round_trip(repo: Repository) -> Repository:
    from repro.persistence.snapshot import RepositorySnapshot

    snapshot = RepositorySnapshot.capture(repo)
    return RepositorySnapshot.from_bytes(snapshot.to_bytes()).restore_repository()


class TestPersistence:
    def test_snapshot_round_trip(self):
        repo = Repository()
        entry = make_entry()
        entry.use_count = 3
        entry.input_mtimes = {"pv": 17}
        repo.add(entry)
        restored = _snapshot_round_trip(repo)
        assert len(restored) == 1
        restored_entry = restored.entries()[0]
        assert restored_entry.entry_id == entry.entry_id
        assert restored_entry.output_path == entry.output_path
        assert restored_entry.use_count == 3
        assert restored_entry.input_mtimes == {"pv": 17}
        assert restored_entry.plan.fingerprint() == entry.plan.fingerprint()

    def test_restored_plans_still_match(self):
        repo = Repository()
        repo.add(make_entry())
        restored = _snapshot_round_trip(repo)
        matcher = PlanMatcher()
        fresh = make_entry()
        assert (
            matcher.match(fresh.plan, restored.entries()[0].plan) is not None
        )

    def test_io_ratio(self):
        stats = EntryStats(input_bytes=1000, output_bytes=100)
        assert stats.io_ratio == 10.0

    def test_io_ratio_zero_output(self):
        stats = EntryStats(input_bytes=1000, output_bytes=0)
        assert stats.io_ratio == 1000.0
