"""Unit tests for match-time freshness classification and delta
eligibility (:mod:`repro.core.freshness`), plus the DFS extent probes
they rely on (``input_extent`` / ``read_range`` / ``prefix_crc32``)
and the inode-identity invariants that make the classification sound."""

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.freshness import (
    APPENDED,
    DEAD,
    FRESH,
    REWRITTEN,
    classify_entry,
    classify_extent,
    classify_input,
    delta_chain,
    delta_upgradeable,
)
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.namenode import InputExtent
from repro.pig.physical.operators import (
    POFilter,
    POForEach,
    POLimit,
    POLoad,
    POSplit,
    POStore,
    POUnion,
)
from repro.pig.physical.plan import PhysicalPlan, linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import Schema
from repro.relational.types import DataType

SCHEMA = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))
PROJ_SCHEMA = SCHEMA.project([0])


@dataclass
class FakeEntry:
    """The three attributes the classifiers read from a repository
    entry, without dragging in registration machinery."""

    input_mtimes: Dict[str, int] = field(default_factory=dict)
    input_extents: Dict[str, InputExtent] = field(default_factory=dict)
    plan: Optional[PhysicalPlan] = None


def extent(mtime=1, generation=0, birth=1, size=10, crc=None) -> InputExtent:
    return InputExtent(
        mtime=mtime, generation=generation, birth=birth, size=size, crc=crc
    )


class TestClassifyExtent:
    def test_missing_live_is_dead(self):
        assert classify_extent(extent(), None) == DEAD

    def test_same_birth_same_size_is_fresh(self):
        # even when the mtime moved (touch): appends are the only
        # in-place mutation, so equal size on the same inode proves
        # byte identity
        recorded = extent(mtime=1, birth=1, size=10)
        live = extent(mtime=9, generation=3, birth=1, size=10)
        assert classify_extent(recorded, live) == FRESH

    def test_same_birth_growth_is_appended(self):
        recorded = extent(birth=1, size=10)
        live = extent(birth=1, size=25)
        assert classify_extent(recorded, live) == APPENDED

    def test_shrink_is_rewritten(self):
        recorded = extent(birth=1, size=10)
        live = extent(birth=1, size=4)
        assert classify_extent(recorded, live) == REWRITTEN

    def test_birth_mismatch_without_crc_is_rewritten(self):
        recorded = extent(birth=1, size=10)
        live = extent(birth=7, size=10)
        assert classify_extent(recorded, live) == REWRITTEN

    def test_birth_mismatch_without_probe_is_rewritten(self):
        # a recorded crc alone is not enough: with no way to hash the
        # live prefix the mismatch stays unverifiable
        recorded = extent(birth=1, size=10, crc=123)
        live = extent(birth=7, size=10)
        assert classify_extent(recorded, live) == REWRITTEN

    def test_birth_mismatch_with_wrong_crc_is_rewritten(self):
        recorded = extent(birth=1, size=10, crc=123)
        live = extent(birth=7, size=10)
        assert classify_extent(recorded, live, lambda size: 999) == REWRITTEN

    def test_birth_mismatch_with_verified_crc_is_fresh(self):
        # the persistence-restart case: logical births are
        # process-local, so a re-materialized input has a foreign
        # birth but a matching prefix checksum
        recorded = extent(birth=1, size=10, crc=123)
        live = extent(birth=7, size=10)
        assert classify_extent(recorded, live, lambda size: 123) == FRESH

    def test_birth_mismatch_with_verified_crc_and_growth_is_appended(self):
        recorded = extent(birth=1, size=10, crc=123)
        live = extent(birth=7, size=25)
        assert (
            classify_extent(recorded, live, lambda size: 123) == APPENDED
        )


class TestClassifyInputLegacy:
    """Entries recorded before ``input_extents`` existed fall back to
    the mtime comparison: any movement is rewritten."""

    def test_same_mtime_is_fresh(self):
        entry = FakeEntry(input_mtimes={"pv": 5})
        assert classify_input(entry, "pv", extent(mtime=5)) == FRESH

    def test_mtime_movement_is_rewritten_even_for_appends(self):
        entry = FakeEntry(input_mtimes={"pv": 5})
        live = extent(mtime=8, size=99)
        assert classify_input(entry, "pv", live) == REWRITTEN

    def test_unrecorded_path_is_rewritten(self):
        entry = FakeEntry()
        assert classify_input(entry, "pv", extent()) == REWRITTEN

    def test_missing_live_is_dead(self):
        entry = FakeEntry(input_mtimes={"pv": 5})
        assert classify_input(entry, "pv", None) == DEAD


class TestDfsExtentProbes:
    def test_input_extent_of_missing_path_is_none(self):
        dfs = DistributedFileSystem(n_datanodes=2)
        assert dfs.input_extent("nope") is None

    def test_input_extent_records_identity_and_crc(self):
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_file("pv", b"hello world\n")
        ext = dfs.input_extent("pv", with_crc=True)
        assert ext.size == 12
        assert ext.crc == zlib.crc32(b"hello world\n")
        # crc is opt-in: the metadata-only probe skips the hash
        assert dfs.input_extent("pv").crc is None

    def test_append_keeps_birth_and_grows_size(self):
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_file("pv", b"a\n")
        before = dfs.input_extent("pv")
        dfs.append("pv", b"b\n")
        after = dfs.input_extent("pv")
        assert after.birth == before.birth
        assert after.size == before.size + 2
        assert after.mtime > before.mtime

    def test_delete_recreate_always_changes_birth(self):
        """The satellite invariant: a recreated path can never alias
        its predecessor's identity, even with byte-identical content
        written in the same breath."""
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_file("pv", b"same bytes\n")
        before = dfs.input_extent("pv")
        dfs.delete("pv")
        dfs.write_file("pv", b"same bytes\n")
        after = dfs.input_extent("pv")
        assert after.birth > before.birth
        assert after.mtime > before.mtime

    def test_overwrite_changes_birth(self):
        """write_file(overwrite=True) is delete-then-create: the new
        inode draws a fresh tick, so it cannot alias the old mtime or
        generation either."""
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_file("pv", b"v1\n")
        before = dfs.input_extent("pv")
        dfs.write_file("pv", b"v1\n", overwrite=True)
        after = dfs.input_extent("pv")
        assert after.birth > before.birth
        assert after.mtime > before.mtime

    def test_read_range_spans_blocks(self):
        dfs = DistributedFileSystem(n_datanodes=2, block_size=4)
        data = b"0123456789abcdef"
        dfs.write_file("pv", data)
        assert dfs.read_range("pv", 2, 11) == data[2:11]
        assert dfs.read_range("pv", 0, len(data)) == data
        assert dfs.read_range("pv", 15, 16) == b"f"

    def test_prefix_crc32_matches_zlib_over_any_prefix(self):
        dfs = DistributedFileSystem(n_datanodes=2, block_size=4)
        data = b"0123456789abcdef"
        dfs.write_file("pv", data)
        for size in (0, 3, 4, 9, len(data)):
            assert dfs.prefix_crc32("pv", size) == zlib.crc32(data[:size])
        assert dfs.prefix_crc32("pv") == zlib.crc32(data)

    def test_append_extends_crc_incrementally(self):
        # the identity the manager's delta refresh relies on: the
        # merged crc is the recorded crc rolled forward over the tail
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_file("pv", b"head\n")
        base = dfs.input_extent("pv", with_crc=True).crc
        dfs.append("pv", b"tail\n")
        assert dfs.prefix_crc32("pv") == zlib.crc32(b"tail\n", base)


class TestClassifyEntry:
    def _dfs_with(self, path: str, data: bytes) -> DistributedFileSystem:
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_file(path, data)
        return dfs

    def test_fresh_entry(self):
        dfs = self._dfs_with("pv", b"rows\n")
        live = dfs.input_extent("pv", with_crc=True)
        entry = FakeEntry(input_extents={"pv": live})
        freshness = classify_entry(entry, dfs)
        assert freshness.fresh
        assert not freshness.stale
        assert not freshness.is_appended

    def test_appended_entry_captures_live_extent(self):
        dfs = self._dfs_with("pv", b"rows\n")
        recorded = dfs.input_extent("pv", with_crc=True)
        entry = FakeEntry(input_extents={"pv": recorded})
        dfs.append("pv", b"more\n")
        freshness = classify_entry(entry, dfs)
        assert freshness.is_appended
        assert freshness.appended["pv"].size == recorded.size + 5

    def test_any_rewritten_input_poisons_the_entry(self):
        dfs = self._dfs_with("pv", b"rows\n")
        extents = {
            "pv": dfs.input_extent("pv", with_crc=True),
        }
        dfs.write_file("users", b"alice\n")
        extents["users"] = dfs.input_extent("users", with_crc=True)
        entry = FakeEntry(input_extents=extents)
        dfs.write_file("users", b"mallory\n", overwrite=True)
        freshness = classify_entry(entry, dfs)
        assert freshness.stale
        assert freshness.kinds["pv"] == FRESH
        assert freshness.kinds["users"] == REWRITTEN

    def test_verified_birth_mismatch_rebases_recorded_extent(self):
        """The restart path: a crc-verified foreign birth classifies
        fresh AND the recorded extent is rebased onto the live inode,
        so the next probe compares births directly."""
        dfs = self._dfs_with("pv", b"rows\n")
        live = dfs.input_extent("pv", with_crc=True)
        recorded = InputExtent(
            mtime=999, generation=7, birth=999, size=live.size, crc=live.crc
        )
        entry = FakeEntry(input_extents={"pv": recorded})
        freshness = classify_entry(entry, dfs)
        assert freshness.fresh
        rebased = entry.input_extents["pv"]
        assert rebased.birth == live.birth
        assert rebased.mtime == live.mtime
        assert rebased.crc == live.crc


def filter_plan(store="out"):
    return linear_plan(
        POLoad("pv", SCHEMA),
        POFilter(BinaryOp(">", Column(1), Const(1.0)), schema=SCHEMA),
        POStore(store, SCHEMA),
    )


class TestDeltaChain:
    def test_filter_chain_is_eligible(self):
        chain = delta_chain(filter_plan())
        assert [op.kind for op in chain] == ["filter"]

    def test_filter_foreach_chain_is_eligible(self):
        plan = linear_plan(
            POLoad("pv", SCHEMA),
            POFilter(BinaryOp(">", Column(1), Const(1.0)), schema=SCHEMA),
            POForEach([Column(0)], [False], ["u"], schema=PROJ_SCHEMA),
            POStore("out", PROJ_SCHEMA),
        )
        chain = delta_chain(plan)
        assert [op.kind for op in chain] == ["filter", "foreach"]

    def test_bare_copy_chain_is_eligible(self):
        plan = linear_plan(POLoad("pv", SCHEMA), POStore("out", SCHEMA))
        assert delta_chain(plan) == []

    def test_limit_is_ineligible(self):
        # limit(old ++ tail) != limit(old) ++ limit(tail)
        plan = linear_plan(
            POLoad("pv", SCHEMA),
            POLimit(5, schema=SCHEMA),
            POStore("out", SCHEMA),
        )
        assert delta_chain(plan) is None

    def test_side_branch_is_ineligible(self):
        plan = PhysicalPlan()
        load = plan.add(POLoad("pv", SCHEMA))
        split = plan.add(POSplit(schema=SCHEMA))
        main = plan.add(POStore("out", SCHEMA))
        side = plan.add(POStore("side", SCHEMA, side=True))
        plan.connect(load, split)
        plan.connect(split, main)
        plan.connect(split, side)
        assert delta_chain(plan) is None

    def test_multi_load_union_is_ineligible(self):
        plan = PhysicalPlan()
        left = plan.add(POLoad("a", SCHEMA))
        right = plan.add(POLoad("b", SCHEMA))
        union = plan.add(POUnion(2, schema=SCHEMA))
        store = plan.add(POStore("out", SCHEMA))
        plan.connect(left, union)
        plan.connect(right, union)
        plan.connect(union, store)
        assert delta_chain(plan) is None

    def test_delta_upgradeable_mirrors_chain(self):
        assert delta_upgradeable(FakeEntry(plan=filter_plan()))
        limit = linear_plan(
            POLoad("pv", SCHEMA),
            POLimit(5, schema=SCHEMA),
            POStore("out", SCHEMA),
        )
        assert not delta_upgradeable(FakeEntry(plan=limit))
