"""Unit tests for the MapReduce compiler (job cutting)."""

from repro.pig.logical.builder import build_logical_plan
from repro.pig.mrcompiler import MRCompiler
from repro.pig.parser import parse
from repro.pig.physical.operators import (
    POForEach,
    POLoad,
    POPackage,
    POStore,
    POUnion,
)


def compile_workflow(source, temp_prefix="tmp/test"):
    plan = build_logical_plan(parse(source))
    return MRCompiler(temp_prefix).compile(plan)


class TestSingleJob:
    def test_map_only_job(self):
        wf = compile_workflow(
            "A = load 'd' as (x:int); B = filter A by x > 1;"
            "store B into 'o';"
        )
        assert len(wf.jobs) == 1
        job = wf.jobs[0]
        assert not job.has_shuffle
        assert job.output_path == "o"

    def test_group_is_one_job(self):
        wf = compile_workflow(
            "A = load 'd' as (u, r:double); D = group A by u;"
            "E = foreach D generate group, SUM(A.r); store E into 'o';"
        )
        assert len(wf.jobs) == 1
        assert wf.jobs[0].has_shuffle

    def test_join_is_one_job_with_flatten(self):
        wf = compile_workflow(
            "A = load 'a' as (x); B = load 'b' as (y);"
            "C = join A by x, B by y; store C into 'o';"
        )
        assert len(wf.jobs) == 1
        plan = wf.jobs[0].plan
        package = [op for op in plan if isinstance(op, POPackage)]
        assert len(package) == 1 and package[0].mode == "join"
        flatten = plan.successors(package[0])[0]
        assert isinstance(flatten, POForEach)
        assert all(flatten.flattens)

    def test_two_loads_merged_into_join_job(self):
        wf = compile_workflow(
            "A = load 'a' as (x); B = load 'b' as (y);"
            "C = join A by x, B by y; store C into 'o';"
        )
        assert len(wf.jobs[0].plan.loads()) == 2


class TestMultiJob:
    L3ISH = (
        "A = load 'pv' as (user, r:double);"
        "B = load 'users' as (name);"
        "C = join B by name, A by user;"
        "D = group C by $0;"
        "E = foreach D generate group, SUM(C.r);"
        "store E into 'o';"
    )

    def test_join_then_group_is_two_jobs(self):
        wf = compile_workflow(self.L3ISH)
        assert len(wf.jobs) == 2

    def test_intermediate_is_temporary(self):
        wf = compile_workflow(self.L3ISH)
        temps = [j for j in wf.jobs if j.temporary]
        assert len(temps) == 1
        assert temps[0].output_path.startswith("tmp/test/")

    def test_dependency_derived_from_paths(self):
        wf = compile_workflow(self.L3ISH)
        order = wf.topo_order()
        assert order[0].temporary
        deps = wf.dependencies(order[1])
        assert deps == [order[0]]

    def test_l11_shape_three_jobs(self):
        wf = compile_workflow(
            "A = load 'pv' as (user); B = foreach A generate user;"
            "C = distinct B;"
            "alpha = load 'wide' as (user, f1); beta = foreach alpha generate user;"
            "gamma = distinct beta;"
            "D = union C, gamma; E = distinct D; store E into 'o';"
        )
        assert len(wf.jobs) == 3
        final = [j for j in wf.jobs if not j.temporary]
        assert len(final) == 1
        deps = wf.dependencies(final[0])
        assert len(deps) == 2  # the paper's L11: one job depends on two

    def test_union_absorbed_into_following_distinct(self):
        wf = compile_workflow(
            "A = load 'a' as (x); B = load 'b' as (x);"
            "C = union A, B; D = distinct C; store D into 'o';"
        )
        assert len(wf.jobs) == 1
        plan = wf.jobs[0].plan
        assert any(isinstance(op, POUnion) for op in plan)
        assert any(
            isinstance(op, POPackage) and op.mode == "distinct" for op in plan
        )

    def test_map_only_union(self):
        wf = compile_workflow(
            "A = load 'a' as (x); B = load 'b' as (x);"
            "C = union A, B; store C into 'o';"
        )
        assert len(wf.jobs) == 1
        assert not wf.jobs[0].has_shuffle

    def test_group_of_group_two_jobs(self):
        wf = compile_workflow(
            "A = load 'd' as (u, v);"
            "B = group A by u;"
            "C = foreach B generate group, COUNT(A);"
            "D = group C by $1;"
            "E = foreach D generate group, COUNT(C);"
            "store E into 'o';"
        )
        assert len(wf.jobs) == 2


class TestRecomputationSemantics:
    def test_shared_alias_recompiled_per_consumer(self):
        wf = compile_workflow(
            "A = load 'd' as (x:int); B = filter A by x > 1;"
            "store B into 'o1'; store B into 'o2';"
        )
        # recomputation: two map-only jobs, each with its own load
        assert len(wf.jobs) == 2
        fp0 = wf.jobs[0].plan.subplan_upto(
            wf.jobs[0].plan.primary_store()
        )
        # both jobs compute the same thing up to the store
        loads = [job.plan.loads()[0].path for job in wf.jobs]
        assert loads == ["d", "d"]


class TestJobPlanInvariants:
    def test_every_job_validates(self):
        wf = compile_workflow(TestMultiJob.L3ISH)
        for job in wf.jobs:
            job.validate()

    def test_all_sources_are_loads_with_schema(self):
        wf = compile_workflow(TestMultiJob.L3ISH)
        for job in wf.jobs:
            for source in job.plan.sources():
                assert isinstance(source, POLoad)
                assert source.schema is not None

    def test_primary_store_is_marked(self):
        wf = compile_workflow(TestMultiJob.L3ISH)
        for job in wf.jobs:
            store = job.plan.primary_store()
            assert isinstance(store, POStore)
            assert not store.side

    def test_distinct_key_is_whole_row(self):
        wf = compile_workflow(
            "A = load 'd' as (x, y); B = distinct A; store B into 'o';"
        )
        from repro.pig.physical.operators import POLocalRearrange

        lr = [op for op in wf.jobs[0].plan if isinstance(op, POLocalRearrange)][0]
        assert len(lr.key_exprs) == 2

    def test_workflow_final_jobs(self):
        wf = compile_workflow(TestMultiJob.L3ISH)
        finals = wf.final_jobs()
        assert len(finals) == 1
        assert finals[0].output_path == "o"
