"""Tests for Python UDF registration and the extra PigMix queries."""

import pytest

from repro.exceptions import ExpressionError
from repro.pig.engine import PigServer
from repro.pigmix.queries import EXTRA_QUERIES, build_query
from repro.relational.expressions import (
    FuncCall,
    register_udf,
    unregister_udf,
)

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"


@pytest.fixture
def revenue_band_udf():
    register_udf("REVENUE_BAND", lambda r: "high" if r > 2.0 else "low")
    yield
    unregister_udf("REVENUE_BAND")


class TestUdfRegistration:
    def test_udf_usable_from_pig(self, server, revenue_band_udf):
        result = server.run(f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, REVENUE_BAND(est_revenue);
            store B into 'out';
        """)
        rows = dict(result.outputs["out"])
        assert rows["carol"] == "high"

    def test_udf_null_safety(self, revenue_band_udf):
        from repro.relational.expressions import Const

        expr = FuncCall("REVENUE_BAND", (Const(None),))
        assert expr.eval(()) is None

    def test_unregistered_udf_rejected(self, server):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            server.compile(f"""
                A = load 'data/page_views' as ({PV});
                B = foreach A generate NOPE(user);
                store B into 'out';
            """)

    def test_aggregate_name_collision_rejected(self):
        with pytest.raises(ExpressionError):
            register_udf("SUM", lambda x: x)

    def test_udf_in_filter(self, server, revenue_band_udf):
        result = server.run(f"""
            A = load 'data/page_views' as ({PV});
            B = filter A by REVENUE_BAND(est_revenue) == 'high';
            C = foreach B generate user;
            store C into 'out';
        """)
        assert len(result.outputs["out"]) == 4

    def test_udf_results_reusable(self, small_data, revenue_band_udf):
        """Deterministic UDF outputs are valid repository entries."""
        from repro.core.manager import ReStoreManager

        manager = ReStoreManager(small_data)
        server = PigServer(small_data, restore=manager)
        query = f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, REVENUE_BAND(est_revenue) as band;
            D = group B by band;
            E = foreach D generate group, COUNT(B);
            store E into 'OUT';
        """
        first = server.run(query.replace("OUT", "u1")).outputs["u1"]
        rerun = server.run(query.replace("OUT", "u2"))
        assert sorted(rerun.outputs["u2"]) == sorted(first)
        assert rerun.stats.n_jobs_executed <= 1


class TestExtraQueries:
    @pytest.mark.parametrize("name", list(EXTRA_QUERIES))
    def test_extra_queries_run(self, tiny_pigmix, name):
        dfs, dataset = tiny_pigmix
        result = PigServer(dfs).run(build_query(name, dataset, f"x/{name}"))
        assert len(result.outputs[f"x/{name}"]) > 0

    def test_l9_sorted(self, tiny_pigmix):
        dfs, dataset = tiny_pigmix
        result = PigServer(dfs).run(build_query("L9", dataset, "x/l9s"))
        revenues = [r[1] for r in result.outputs["x/l9s"]]
        assert revenues == sorted(revenues)

    def test_l10_multi_key_sorted(self, tiny_pigmix):
        dfs, dataset = tiny_pigmix
        result = PigServer(dfs).run(build_query("L10", dataset, "x/l10s"))
        rows = result.outputs["x/l10s"]
        users = [r[0] for r in rows]
        assert users == sorted(users)
        # within one user, revenue is descending
        from itertools import groupby

        for _, group in groupby(rows, key=lambda r: r[0]):
            revs = [r[2] for r in group]
            assert revs == sorted(revs, reverse=True)

    def test_order_by_result_reusable_whole_job(self, tiny_pigmix):
        from repro.core.manager import ReStoreManager

        dfs, dataset = tiny_pigmix
        manager = ReStoreManager(dfs)
        server = PigServer(dfs, restore=manager)
        first = server.run(build_query("L9", dataset, "x/o1")).outputs["x/o1"]
        rerun = server.run(build_query("L9", dataset, "x/o2"))
        assert rerun.outputs["x/o2"] == first
        assert rerun.stats.n_jobs_executed <= 1
