"""Unit tests for the Pig Latin parser."""

import pytest

from repro.exceptions import PigParseError
from repro.pig import ast
from repro.pig.parser import parse


def only(statements_source):
    script = parse(statements_source)
    assert len(script.statements) == 1
    return script.statements[0]


class TestLoad:
    def test_simple(self):
        stmt = only("A = load 'data';")
        assert isinstance(stmt, ast.LoadStmt)
        assert stmt.alias == "A"
        assert stmt.path == "data"
        assert stmt.schema == ()

    def test_with_schema(self):
        stmt = only("A = load 'd' as (user, n:int, rev:double);")
        assert [f.name for f in stmt.schema] == ["user", "n", "rev"]
        assert stmt.schema[1].type_name == "int"

    def test_with_using(self):
        stmt = only("A = load 'd' using PigStorage;")
        assert stmt.loader == "PigStorage"

    def test_using_with_delimiter_arg(self):
        stmt = only("A = load 'd' using PigStorage(',') as (a, b);")
        assert len(stmt.schema) == 2

    def test_paper_spelling_without_as(self):
        # the paper's Q1 writes: load 'users' using (name, phone, ...)
        stmt = only("alpha = load 'users' (name, phone);")
        assert [f.name for f in stmt.schema] == ["name", "phone"]


class TestForeach:
    def test_simple_projection(self):
        stmt = only("B = foreach A generate user, est_revenue;")
        assert isinstance(stmt, ast.ForeachStmt)
        assert len(stmt.items) == 2
        assert stmt.items[0].expr == ast.AName("user")

    def test_with_alias(self):
        stmt = only("B = foreach A generate user as u;")
        assert stmt.items[0].alias == "u"

    def test_flatten(self):
        stmt = only("B = foreach A generate flatten(grp);")
        assert stmt.items[0].flatten is True

    def test_aggregate_call(self):
        stmt = only("E = foreach D generate group, SUM(C.est_revenue);")
        call = stmt.items[1].expr
        assert isinstance(call, ast.ACall)
        assert call.name == "SUM"
        assert isinstance(call.args[0], ast.ADot)

    def test_star(self):
        stmt = only("B = foreach A generate *;")
        assert isinstance(stmt.items[0].expr, ast.AStar)

    def test_dollar_refs(self):
        stmt = only("B = foreach A generate $0, $2;")
        assert stmt.items[0].expr == ast.ADollar(0)
        assert stmt.items[1].expr == ast.ADollar(2)

    def test_arithmetic(self):
        stmt = only("B = foreach A generate rev * 2 + 1;")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.ABinary)
        assert expr.op == "+"
        assert expr.left.op == "*"  # precedence


class TestFilter:
    def test_comparison(self):
        stmt = only("B = filter A by n > 5;")
        assert isinstance(stmt, ast.FilterStmt)
        assert stmt.predicate.op == ">"

    def test_boolean_logic(self):
        stmt = only("B = filter A by a == 1 and not b == 2 or c == 3;")
        assert stmt.predicate.op == "or"

    def test_is_null(self):
        stmt = only("B = filter A by user is null;")
        assert stmt.predicate.op == "isnull"

    def test_is_not_null(self):
        stmt = only("B = filter A by user is not null;")
        assert stmt.predicate.op == "notnull"

    def test_string_comparison(self):
        stmt = only("B = filter A by city == 'waterloo';")
        assert stmt.predicate.right == ast.AString("waterloo")


class TestJoin:
    def test_two_way(self):
        stmt = only("C = join beta by name, B by user;")
        assert isinstance(stmt, ast.JoinStmt)
        assert [j.alias for j in stmt.inputs] == ["beta", "B"]
        assert all(not j.outer for j in stmt.inputs)

    def test_left_outer(self):
        stmt = only("C = join a by x left outer, b by y;")
        assert stmt.inputs[0].outer is True
        assert stmt.inputs[1].outer is False

    def test_right_outer(self):
        stmt = only("C = join a by x right, b by y;")
        assert stmt.inputs[0].outer is False
        assert stmt.inputs[1].outer is True

    def test_full_outer(self):
        stmt = only("C = join a by x full outer, b by y;")
        assert all(j.outer for j in stmt.inputs)

    def test_composite_keys(self):
        stmt = only("C = join a by (x, y), b by (u, v);")
        assert len(stmt.inputs[0].keys) == 2

    def test_parallel(self):
        stmt = only("C = join a by x, b by y parallel 40;")
        assert stmt.parallel == 40


class TestGroupCogroup:
    def test_group_by(self):
        stmt = only("D = group C by user;")
        assert isinstance(stmt, ast.GroupStmt)
        assert stmt.inputs == ("C",)
        assert not stmt.group_all

    def test_group_by_dollar(self):
        stmt = only("D = group C by $0;")
        assert stmt.keys_per_input[0][0] == ast.ADollar(0)

    def test_group_all(self):
        stmt = only("D = group C all;")
        assert stmt.group_all

    def test_group_composite(self):
        stmt = only("D = group C by (a, b);")
        assert len(stmt.keys_per_input[0]) == 2

    def test_cogroup(self):
        stmt = only("D = cogroup A by x, B by y;")
        assert stmt.inputs == ("A", "B")


class TestOtherStatements:
    def test_distinct(self):
        stmt = only("B = distinct A;")
        assert isinstance(stmt, ast.DistinctStmt)

    def test_union(self):
        stmt = only("C = union A, B;")
        assert stmt.inputs == ("A", "B")

    def test_union_three_way(self):
        stmt = only("D = union A, B, C;")
        assert stmt.inputs == ("A", "B", "C")

    def test_order(self):
        stmt = only("B = order A by x desc, y;")
        assert stmt.items[0].ascending is False
        assert stmt.items[1].ascending is True

    def test_limit(self):
        stmt = only("B = limit A 10;")
        assert stmt.n == 10

    def test_split(self):
        stmt = only("split A into B if x > 1, C if x <= 1;")
        assert isinstance(stmt, ast.SplitStmt)
        assert [b.alias for b in stmt.branches] == ["B", "C"]

    def test_store(self):
        stmt = only("store C into 'out';")
        assert isinstance(stmt, ast.StoreStmt)
        assert stmt.path == "out"

    def test_group_as_field_name(self):
        """'group' must parse as a field reference inside GENERATE."""
        stmt = only("E = foreach D generate group, COUNT(C);")
        assert stmt.items[0].expr == ast.AName("group")


class TestScripts:
    def test_paper_q2(self):
        script = parse("""
            A = load 'page_views' as (user, timestamp, est_revenue,
                page_info, page_links);
            B = foreach A generate user, est_revenue;
            alpha = load 'users' as (name, phone, address, city);
            beta = foreach alpha generate name;
            C = join beta by name, A by user;
            D = group C by $0;
            E = foreach D generate group, SUM(C.est_revenue);
            store E into 'L3_out';
        """)
        assert len(script.statements) == 8
        assert len(script.stores()) == 1

    def test_multiple_stores(self):
        script = parse("""
            A = load 'x';
            store A into 'o1';
            store A into 'o2';
        """)
        assert len(script.stores()) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "A = load;",
            "A = frobnicate B;",
            "A = load 'x'",  # missing semicolon
            "store into 'x';",
            "B = foreach A generate ;",
            "C = join a by;",
            "B = filter A by;",
            "= load 'x';",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(PigParseError):
            parse(bad)

    def test_union_single_input(self):
        with pytest.raises(PigParseError):
            parse("C = union A;")
