"""Tests for the fragment-replicate (map-side) join extension."""

import pytest

from repro.exceptions import SchemaError
from repro.pig.engine import PigServer
from repro.pig.physical.operators import POFRJoin

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"

FR_QUERY = f"""
A = load 'data/page_views' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load 'data/users' as ({USERS});
beta = foreach alpha generate name;
C = join B by user, beta by name using 'replicated';
store C into 'out';
"""

SHUFFLE_QUERY = FR_QUERY.replace(" using 'replicated'", "")


class TestCompilation:
    def test_map_only_job(self, server):
        workflow = server.compile(FR_QUERY)
        assert len(workflow.jobs) == 1
        job = workflow.jobs[0]
        assert not job.has_shuffle
        assert any(isinstance(op, POFRJoin) for op in job.plan)

    def test_followed_by_group_is_still_one_job(self, server):
        """The map-side join folds into the group job's map phase."""
        query = FR_QUERY.replace(
            "store C into 'out';",
            "D = group C by $0;"
            "E = foreach D generate group, SUM(C.est_revenue);"
            "store E into 'out';",
        )
        workflow = server.compile(query)
        assert len(workflow.jobs) == 1
        assert workflow.jobs[0].has_shuffle

    def test_outer_replicated_rejected(self, server):
        bad = FR_QUERY.replace(
            "join B by user, beta by name using 'replicated'",
            "join B by user left outer, beta by name using 'replicated'",
        )
        with pytest.raises(SchemaError):
            server.compile(bad)

    def test_unknown_strategy_rejected(self, server):
        from repro.exceptions import PigParseError

        with pytest.raises(PigParseError):
            server.compile(FR_QUERY.replace("'replicated'", "'skewed'"))


class TestExecution:
    def test_same_result_as_shuffle_join(self, server):
        """FR join and shuffle join agree row-for-row."""
        fr = server.run(FR_QUERY.replace("'out'", "'out_fr'"))
        shuffle = server.run(SHUFFLE_QUERY.replace("'out'", "'out_sh'"))
        assert sorted(fr.outputs["out_fr"]) == sorted(
            shuffle.outputs["out_sh"]
        )

    def test_no_shuffle_bytes(self, server):
        result = server.run(FR_QUERY.replace("'out'", "'o2'"))
        stats = list(result.stats.job_stats.values())[0]
        assert stats.shuffle_records == 0
        assert stats.shuffle_bytes == 0

    def test_inner_semantics(self, server):
        result = server.run(FR_QUERY.replace("'out'", "'o3'"))
        users_in_result = {r[0] for r in result.outputs["o3"]}
        assert "dave" not in users_in_result  # viewer without user row
        assert "erin" not in users_in_result  # user without views

    def test_chained_fr_joins(self, server):
        query = f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, est_revenue;
            alpha = load 'data/users' as ({USERS});
            beta = foreach alpha generate name, city;
            C = join B by user, beta by name using 'replicated';
            gamma = foreach alpha generate city as c2;
            D = join C by city, gamma by c2 using 'replicated';
            store D into 'out4';
        """
        result = server.run(query)
        assert len(result.outputs["out4"]) > 0


class TestReStoreIntegration:
    def test_frjoin_output_reusable(self, small_data):
        from repro.core.manager import ReStoreManager

        manager = ReStoreManager(small_data)
        server = PigServer(small_data, restore=manager)
        first = server.run(FR_QUERY.replace("'out'", "'r1'"))
        rerun = server.run(FR_QUERY.replace("'out'", "'r2'"))
        assert sorted(rerun.outputs["r2"]) == sorted(first.outputs["r1"])
        assert rerun.stats.n_jobs_executed <= 1  # copy job at most

    def test_aggressive_heuristic_materializes_frjoin(self, small_data):
        """When the FR join is mid-plan, HA stores its output."""
        from repro.core.manager import ReStoreManager

        manager = ReStoreManager(small_data)
        server = PigServer(small_data, restore=manager)
        query = FR_QUERY.replace(
            "store C into 'out';",
            "D = group C by $0;"
            "E = foreach D generate group, COUNT(C);"
            "store E into 'agg_out';",
        )
        server.run(query)
        kinds = {e.anchor_kind for e in manager.repository}
        assert "join" in kinds
