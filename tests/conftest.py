"""Shared fixtures: tiny deterministic sandboxes for fast tests."""

from __future__ import annotations

import pytest

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.pig.engine import PigServer
from repro.pigmix.datagen import PigMixConfig, PigMixDataGenerator

PAGE_VIEWS_SCHEMA = (
    "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
)
USERS_SCHEMA = "name, phone, address, city"


@pytest.fixture
def dfs() -> DistributedFileSystem:
    return DistributedFileSystem(n_datanodes=4, block_size=4 * 1024)


@pytest.fixture
def small_data(dfs: DistributedFileSystem) -> DistributedFileSystem:
    """A hand-written micro page_views/users pair with known answers."""
    page_views = [
        # user, action, timestamp, est_revenue, page_info, page_links
        "alice\t1\t100\t1.5\tinfoA\tlinksA",
        "alice\t2\t101\t2.5\tinfoB\tlinksB",
        "bob\t1\t102\t4.0\tinfoC\tlinksC",
        "carol\t3\t103\t8.0\tinfoD\tlinksD",
        "alice\t1\t104\t0.5\tinfoE\tlinksE",
        "dave\t2\t105\t3.0\tinfoF\tlinksF",
    ]
    users = [
        "alice\t555-0001\t1 main st\twaterloo",
        "bob\t555-0002\t2 main st\ttoronto",
        "carol\t555-0003\t3 main st\twaterloo",
        "erin\t555-0005\t5 main st\tottawa",  # never views pages
    ]
    dfs.write_file("data/page_views", "\n".join(page_views) + "\n")
    dfs.write_file("data/users", "\n".join(users) + "\n")
    return dfs


@pytest.fixture
def server(small_data: DistributedFileSystem) -> PigServer:
    return PigServer(small_data)


@pytest.fixture
def restore_server(small_data: DistributedFileSystem):
    """(server, manager) pair wired together over the micro data."""
    manager = ReStoreManager(small_data, config=ReStoreConfig())
    return PigServer(small_data, restore=manager), manager


@pytest.fixture
def pigmix_dfs() -> DistributedFileSystem:
    return DistributedFileSystem(n_datanodes=4)


@pytest.fixture
def tiny_pigmix(pigmix_dfs):
    """A tiny generated PigMix instance (fast but non-trivial)."""
    config = PigMixConfig(
        n_page_views=120, n_users=20, n_power_users=5, n_widerow=40, seed=11
    )
    dataset = PigMixDataGenerator(config).generate(pigmix_dfs)
    return pigmix_dfs, dataset


TINY_PIGMIX_CONFIG = PigMixConfig(
    n_page_views=120, n_users=20, n_power_users=5, n_widerow=40, seed=11
)
