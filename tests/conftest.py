"""Shared fixtures: tiny deterministic sandboxes for fast tests,
plus the :class:`StepScheduler` harness that makes concurrency tests
reproducible."""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, List, Optional

import pytest

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.faults import injector as fault_injector
from repro.pig.engine import PigServer
from repro.pigmix.datagen import PigMixConfig, PigMixDataGenerator


@pytest.fixture(autouse=True)
def _fault_injector_hygiene():
    """No fault-injector state may bleed between tests: clocks, fired
    logs, and the installed injector itself are test-local.  Reset the
    active injector (if a test installed one) before uninstalling so a
    later install of the *same* plan starts from hit zero."""
    fault_injector.uninstall()
    yield
    active = fault_injector.active()
    if active is not None:
        active.reset()
    fault_injector.uninstall()

PAGE_VIEWS_SCHEMA = (
    "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
)
USERS_SCHEMA = "name, phone, address, city"


@pytest.fixture
def dfs() -> DistributedFileSystem:
    return DistributedFileSystem(n_datanodes=4, block_size=4 * 1024)


@pytest.fixture
def small_data(dfs: DistributedFileSystem) -> DistributedFileSystem:
    """A hand-written micro page_views/users pair with known answers."""
    page_views = [
        # user, action, timestamp, est_revenue, page_info, page_links
        "alice\t1\t100\t1.5\tinfoA\tlinksA",
        "alice\t2\t101\t2.5\tinfoB\tlinksB",
        "bob\t1\t102\t4.0\tinfoC\tlinksC",
        "carol\t3\t103\t8.0\tinfoD\tlinksD",
        "alice\t1\t104\t0.5\tinfoE\tlinksE",
        "dave\t2\t105\t3.0\tinfoF\tlinksF",
    ]
    users = [
        "alice\t555-0001\t1 main st\twaterloo",
        "bob\t555-0002\t2 main st\ttoronto",
        "carol\t555-0003\t3 main st\twaterloo",
        "erin\t555-0005\t5 main st\tottawa",  # never views pages
    ]
    dfs.write_file("data/page_views", "\n".join(page_views) + "\n")
    dfs.write_file("data/users", "\n".join(users) + "\n")
    return dfs


@pytest.fixture
def server(small_data: DistributedFileSystem) -> PigServer:
    return PigServer(small_data)


@pytest.fixture
def restore_server(small_data: DistributedFileSystem):
    """(server, manager) pair wired together over the micro data."""
    manager = ReStoreManager(small_data, config=ReStoreConfig())
    return PigServer(small_data, restore=manager), manager


@pytest.fixture
def pigmix_dfs() -> DistributedFileSystem:
    return DistributedFileSystem(n_datanodes=4)


@pytest.fixture
def tiny_pigmix(pigmix_dfs):
    """A tiny generated PigMix instance (fast but non-trivial)."""
    config = PigMixConfig(
        n_page_views=120, n_users=20, n_power_users=5, n_widerow=40, seed=11
    )
    dataset = PigMixDataGenerator(config).generate(pigmix_dfs)
    return pigmix_dfs, dataset


TINY_PIGMIX_CONFIG = PigMixConfig(
    n_page_views=120, n_users=20, n_power_users=5, n_widerow=40, seed=11
)


class StepScheduler:
    """Deterministic thread interleaver for concurrency tests.

    Worker callables invoke :meth:`step` at interesting points; the
    scheduler parks every worker on a barrier (a shared condition
    variable) and releases exactly one at a time, chosen by a seeded
    RNG.  Only one worker ever runs between two grants, so the whole
    interleaving is a pure function of the seed — a failing schedule
    replays exactly by rerunning with the same seed, and ``history``
    records the grant sequence for the failure message.

    Every wait carries a deadline: a worker that can never be released
    (deadlock, lost wakeup) fails the test with a ``TimeoutError``
    instead of hanging the suite.
    """

    def __init__(self, seed: int = 0, timeout_s: float = 30.0):
        self.seed = seed
        self.timeout_s = timeout_s
        self.history: List[str] = []
        self._rng = random.Random(seed)
        self._cond = threading.Condition()
        self._waiting: Dict[str, str] = {}
        self._granted: Optional[str] = None
        self._live: set = set()
        self._failures: List[BaseException] = []

    def step(self, label: str = "") -> None:
        """Park the calling worker until the scheduler releases it."""
        name = threading.current_thread().name
        with self._cond:
            if name not in self._live:
                return  # unmanaged thread: checkpoints are no-ops
            self._waiting[name] = label
            self._cond.notify_all()
            deadline = time.monotonic() + self.timeout_s
            while self._granted != name:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"worker {name} never released at step {label!r} "
                        f"(history={self.history})"
                    )
                self._cond.wait(remaining)
            self._granted = None
            del self._waiting[name]
            self._cond.notify_all()

    def _run_worker(self, name: str, fn: Callable[[], None]) -> None:
        try:
            self.step("start")
            fn()
        except BaseException as exc:  # noqa: BLE001 - reraised in run()
            with self._cond:
                self._failures.append(exc)
        finally:
            with self._cond:
                self._live.discard(name)
                self._waiting.pop(name, None)
                self._cond.notify_all()

    def run(self, workers: Dict[str, Callable[[], None]]) -> List[str]:
        """Run *workers* to completion under the seeded schedule.

        Returns the grant history; re-raises the first worker failure.
        """
        self._live = set(workers)
        threads = [
            threading.Thread(
                target=self._run_worker, args=(name, fn), name=name, daemon=True
            )
            for name, fn in workers.items()
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + self.timeout_s
        with self._cond:
            while self._live:
                quiescent = self._granted is None and set(self._waiting) == self._live
                if not quiescent:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"scheduler timed out waiting for quiescence "
                            f"(live={sorted(self._live)}, "
                            f"waiting={sorted(self._waiting)})"
                        )
                    self._cond.wait(remaining)
                    continue
                pick = self._rng.choice(sorted(self._waiting))
                self.history.append(pick)
                self._granted = pick
                self._cond.notify_all()
        for thread in threads:
            thread.join(self.timeout_s)
        if self._failures:
            raise self._failures[0]
        return self.history


@pytest.fixture
def step_scheduler():
    """Factory for seeded :class:`StepScheduler` instances."""

    def make(seed: int = 0, timeout_s: float = 30.0) -> StepScheduler:
        return StepScheduler(seed=seed, timeout_s=timeout_s)

    return make
