"""Integration tests for ReStoreManager — the paper's end-to-end flows.

These exercise the scenarios of Figures 2-6: whole-job reuse across
queries (Q1 -> Q2), sub-job reuse, repository chaining across multi-job
workflows, resubmission, and eviction effects.
"""


from repro.core.eviction import InputModifiedEviction, TimeWindowEviction
from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.pig.engine import PigServer

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"

Q1 = f"""
A = load 'data/page_views' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load 'data/users' as ({USERS});
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'q1_out';
"""

Q2 = f"""
A = load 'data/page_views' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load 'data/users' as ({USERS});
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'q2_out';
"""

Q2_EXPECTED = [("alice", 4.5), ("bob", 4.0), ("carol", 8.0)]


def make(small_data, **config_kwargs):
    manager = ReStoreManager(
        small_data, config=ReStoreConfig(**config_kwargs)
    )
    return PigServer(small_data, restore=manager), manager


class TestPaperExample:
    def test_q2_reuses_q1_whole_job(self, small_data):
        """The paper's Figures 2-4: Q2's join job is answered entirely
        by Q1's stored output."""
        server, manager = make(small_data)
        server.run(Q1)
        result = server.run(Q2)
        assert sorted(result.outputs["q2_out"]) == Q2_EXPECTED
        assert manager.elimination_count == 1
        decisions = ReStoreManager.legacy_strings(result.events)
        assert any("whole job" in line for line in decisions)

    def test_q2_correct_without_priming(self, small_data):
        server, manager = make(small_data)
        result = server.run(Q2)
        assert sorted(result.outputs["q2_out"]) == Q2_EXPECTED
        assert manager.elimination_count == 0

    def test_q1_reuses_q2_subjobs(self, small_data):
        """Reverse order: Q1 arrives after Q2; its single job matches
        Q2's stored join job (whole-job reuse of an intermediate)."""
        server, manager = make(small_data)
        server.run(Q2)
        result = server.run(Q1)
        assert len(result.outputs["q1_out"]) == 5
        assert manager.rewrite_count + manager.elimination_count >= 1

    def test_variant_aggregation_reuses_group_subjob(self, small_data):
        """L3-variant flow: same query with AVG instead of SUM reuses
        the join job (whole) and the stored Group output (sub-job)."""
        server, manager = make(small_data)
        server.run(Q2)
        variant = Q2.replace("SUM", "AVG").replace("q2_out", "q2avg_out")
        result = server.run(variant)
        assert sorted(result.outputs["q2avg_out"]) == [
            ("alice", 1.5), ("bob", 4.0), ("carol", 8.0),
        ]
        decisions = ReStoreManager.legacy_strings(result.events)
        assert any("group" in line for line in decisions)

    def test_resubmission_same_output_eliminated(self, small_data):
        server, manager = make(small_data)
        server.run(Q2)
        result = server.run(Q2)
        assert sorted(result.outputs["q2_out"]) == Q2_EXPECTED
        # both jobs answered from the repository, nothing executed
        assert result.stats.n_jobs_executed == 0

    def test_resubmission_new_output_copies(self, small_data):
        server, manager = make(small_data)
        server.run(Q2)
        rerun = Q2.replace("q2_out", "q2_rerun")
        result = server.run(rerun)
        assert sorted(result.outputs["q2_rerun"]) == Q2_EXPECTED
        # only the copy job ran
        assert result.stats.n_jobs_executed == 1

    def test_reuse_result_equals_fresh_result(self, small_data):
        """Correctness invariant: rewritten workflows produce exactly
        the rows the unmodified workflow produces."""
        fresh_server = PigServer(small_data)
        expected = fresh_server.run(
            Q2.replace("q2_out", "fresh_out")
        ).outputs["fresh_out"]

        server, _ = make(small_data)
        server.run(Q1)
        reused = server.run(Q2).outputs["q2_out"]
        assert sorted(reused) == sorted(expected)


class TestRepositoryContents:
    def test_whole_and_sub_jobs_registered(self, small_data):
        server, manager = make(small_data)
        server.run(Q2)
        kinds = sorted(e.anchor_kind for e in manager.repository)
        assert "whole-job" in kinds
        assert "project" in kinds
        assert "group" in kinds

    def test_duplicate_candidates_not_registered(self, small_data):
        server, manager = make(small_data)
        server.run(Q1)
        count_after_first = len(manager.repository)
        server.run(Q1.replace("q1_out", "q1b_out"))
        # the rerun matched; no duplicate plans should be added
        assert len(manager.repository) == count_after_first

    def test_kept_paths_preserved_on_dfs(self, small_data):
        server, manager = make(small_data)
        server.run(Q2)
        for path in manager.kept_paths:
            assert small_data.exists(path)

    def test_temporary_whole_job_output_kept(self, small_data):
        server, manager = make(small_data)
        result = server.run(Q2)
        temps = [j.output_path for j in result.workflow.jobs if j.temporary]
        assert temps
        assert all(small_data.exists(p) for p in temps)

    def test_register_whole_jobs_none(self, small_data):
        server, manager = make(small_data, register_whole_jobs="none")
        server.run(Q1)
        assert all(e.anchor_kind != "whole-job" for e in manager.repository)

    def test_rewrite_disabled(self, small_data):
        server, manager = make(small_data, rewrite_enabled=False)
        server.run(Q1)
        result = server.run(Q2)
        assert manager.rewrite_count == 0
        assert manager.elimination_count == 0
        assert sorted(result.outputs["q2_out"]) == Q2_EXPECTED

    def test_inject_disabled(self, small_data):
        server, manager = make(small_data, inject_enabled=False)
        server.run(Q1)
        assert all(
            e.anchor_kind == "whole-job" for e in manager.repository
        )


class TestEviction:
    def test_time_window_eviction_runs_between_workflows(self, small_data):
        server, manager = make(
            small_data,
            eviction_policies=[TimeWindowEviction(window=1)],
        )
        server.run(Q1)
        n_entries = len(manager.repository)
        assert n_entries > 0
        # run three unrelated workflows; Q1's entries go stale
        for i in range(3):
            server.run(
                f"X = load 'data/users' as ({USERS}); "
                f"Y = filter X by city == 'nowhere_{i}'; "
                f"store Y into 'noop_{i}';"
            )
        assert len(manager.repository) < n_entries + 6

    def test_input_modified_eviction(self, small_data):
        server, manager = make(
            small_data,
            eviction_policies=[InputModifiedEviction()],
        )
        server.run(Q1)
        assert len(manager.repository) > 0
        # modify the source dataset: Rule 4 must clear dependent entries
        small_data.write_file("data/page_views", "x\t1\t1\t1.0\ta\tb\n",
                              overwrite=True)
        small_data.write_file("data/users", "x\t1\t1\t1\n", overwrite=True)
        manager.clock += 1
        evicted = manager.run_evictions()
        assert evicted
        assert len(manager.repository) == 0

    def test_stale_entries_not_reused_after_eviction(self, small_data):
        server, manager = make(
            small_data,
            eviction_policies=[InputModifiedEviction()],
        )
        server.run(Q1)
        small_data.write_file(
            "data/page_views",
            "zed\t1\t100\t9.0\ti\tl\n",
            overwrite=True,
        )
        small_data.write_file("data/users", "zed\tp\ta\tc\n", overwrite=True)
        result = server.run(Q2)
        # fresh data -> fresh answer; no stale reuse
        assert result.outputs["q2_out"] == [("zed", 9.0)]


class TestEvents:
    def test_events_drained(self, small_data):
        server, manager = make(small_data)
        server.run(Q1)
        result = server.run(Q2)
        assert result.events
        assert manager.drain() == []  # drained by the engine

    def test_repr(self, small_data):
        _, manager = make(small_data)
        assert "ReStoreManager" in repr(manager)
