"""Differential tests for the zero-copy data plane + exec_sim bench.

The load-bearing guarantee: the data-plane tier (legacy / per-row fast
/ batched) changes wall time and nothing else.  A multi-job
PigMix-style workflow run on every tier must produce byte-identical
DFS contents, identical ``WorkflowStats``/``JobStats`` counters,
identical DFS byte counters, and an identical rewrite/elimination
decision log.
"""

import pytest

from repro.bench.exec_sim import (
    BATCH_SPEEDUP_FLOOR,
    SPEEDUP_FLOOR,
    build_queries,
    check_exec_sim_gates,
    generate_event_rows,
    run_exec_mode,
    run_exec_scale,
)
from repro.core.manager import ReStoreConfig
from repro.pigmix.datagen import PigMixConfig, PigMixDataGenerator
from repro.pigmix.queries import build_query
from repro.session import ReStoreSession


def _job_counters(result):
    out = []
    for run in result:
        for job_id in sorted(run.stats.job_stats):
            stats = run.stats.job_stats[job_id]
            out.append(
                (
                    job_id,
                    stats.input_records,
                    stats.map_output_records,
                    stats.shuffle_records,
                    stats.shuffle_bytes,
                    stats.reduce_groups,
                    stats.op_records,
                    tuple(sorted(stats.load_bytes.items())),
                    tuple(
                        (s.path, s.bytes, s.records, s.phase, s.side)
                        for s in stats.stores
                    ),
                    stats.sim_seconds,
                )
            )
        out.append(tuple(sorted(run.stats.eliminated_jobs)))
    return out


def _run_pigmix_stream(**config_kwargs):
    """A multi-job PigMix stream (L2/L3 share the join prefix, L5 is
    an anti-join, L3 again for whole-job reuse) through one session."""
    config = ReStoreConfig(**config_kwargs)
    with ReStoreSession(datanodes=4, config=config) as session:
        dataset = PigMixDataGenerator(
            PigMixConfig(n_page_views=150, n_users=30, n_widerow=40)
        ).generate(session.dfs)
        results = []
        for i, query in enumerate(["L2", "L3", "L5", "L3"]):
            source = build_query(query, dataset, out=f"out/{query}_{i}")
            results.append(session.run(source, name=f"{query}_{i}"))
        snapshot = {
            path: session.dfs.read_file(path) for path in session.dfs.list_paths()
        }
        counters = _job_counters(results)
        decisions = [repr(e) for res in results for e in res.events]
        dfs_counters = (
            session.dfs.bytes_read,
            session.dfs.bytes_written,
            session.dfs.replica_bytes_written,
        )
        outputs = [res.outputs for res in results]
        return snapshot, counters, decisions, dfs_counters, outputs


class TestDifferentialPigMix:
    @pytest.mark.parametrize(
        "config_kwargs",
        [
            {"fast_data_plane": True},  # batched (production default)
            {"batch_size": 0},  # per-row fast plane
            {"batch_size": 3},  # chunk boundaries mid-stream
        ],
        ids=["batched", "per-row", "batch-3"],
    )
    def test_fast_tiers_match_the_legacy_plane(self, config_kwargs):
        fast = _run_pigmix_stream(**config_kwargs)
        legacy = _run_pigmix_stream(fast_data_plane=False)
        snapshot_f, counters_f, decisions_f, dfs_f, outputs_f = fast
        snapshot_l, counters_l, decisions_l, dfs_l, outputs_l = legacy
        assert snapshot_f == snapshot_l  # byte-identical DFS contents
        assert counters_f == counters_l
        assert decisions_f == decisions_l
        assert dfs_f == dfs_l
        assert outputs_f == outputs_l


def _green_scale(n_rows=1000):
    """A payload scale every gate accepts."""
    return {
        "n_rows": n_rows,
        "speedup": SPEEDUP_FLOOR + 1.0,
        "batch_speedup": BATCH_SPEEDUP_FLOOR + 0.5,
        "outputs_identical": True,
        "counters_identical": True,
        "dfs_counters_identical": True,
        "decisions_identical": True,
        "modes": {
            "batched": {
                "workflow_wall_s": 0.05,
                "copy_rewrites": 2,
                "payload_reuses": 2,
            },
            "fast": {
                "workflow_wall_s": 0.1,
                "copy_rewrites": 2,
                "payload_reuses": 2,
            },
            "legacy": {"workflow_wall_s": 0.5},
        },
    }


class TestExecSimBench:
    def test_scale_run_reports_identical(self):
        scale = run_exec_scale(300, seed=5, reps=1)
        assert scale["outputs_identical"]
        assert scale["counters_identical"]
        assert scale["dfs_counters_identical"]
        assert scale["decisions_identical"]
        assert scale["n_queries"] == len(build_queries())
        for mode in ("batched", "fast", "legacy"):
            stats = scale["modes"][mode]
            assert stats["input_records"] > 0
            assert stats["jobs_run"] > 0
            assert stats["rows_per_sec"] > 0
        # reuse actually happened: consumers were rewritten, identical
        # drill queries degraded to copy jobs, and on the fast tiers
        # every copy store cloned its producer's payload
        for mode in ("batched", "fast"):
            stats = scale["modes"][mode]
            assert stats["rewrites"] > 0
            assert stats["copy_rewrites"] > 0
            assert stats["payload_reuses"] >= stats["copy_rewrites"]
        assert scale["modes"]["legacy"]["payload_reuses"] == 0

    def test_mode_result_shape(self):
        rows = generate_event_rows(120, seed=5)
        queries = build_queries()[:3]
        result = run_exec_mode(rows, queries, mode="batched")
        assert result.jobs_run >= len(queries)
        assert len(result.snapshot) > 0
        assert result.dfs_counters[1] > 0  # bytes_written moved

    def test_gates_green_on_identical_fast_payload(self):
        payload = {"scales": [_green_scale()]}
        assert check_exec_sim_gates(payload) == []
        assert check_exec_sim_gates(None) == []

    def test_gates_trip_on_slow_or_divergent(self):
        slow = _green_scale()
        slow["speedup"] = SPEEDUP_FLOOR - 0.5
        divergent = _green_scale(n_rows=2000)
        divergent["outputs_identical"] = False
        failures = check_exec_sim_gates({"scales": [slow, divergent]})
        assert len(failures) == 2
        assert any("below" in f for f in failures)

    def test_gates_trip_on_batch_regression_at_largest_scale(self):
        small = _green_scale(n_rows=1000)
        small["batch_speedup"] = 1.0  # not the largest scale: ignored
        large = _green_scale(n_rows=5000)
        large["batch_speedup"] = BATCH_SPEEDUP_FLOOR - 0.2
        failures = check_exec_sim_gates({"scales": [small, large]})
        assert len(failures) == 1
        assert "batch speedup" in failures[0]

    def test_gates_trip_on_reserialized_copy_stores(self):
        scale = _green_scale()
        scale["modes"]["batched"]["payload_reuses"] = 0
        failures = check_exec_sim_gates({"scales": [scale]})
        assert len(failures) == 1
        assert "re-serialized" in failures[0]

    def test_gates_trip_when_no_copy_rewrites_happen(self):
        scale = _green_scale()
        for mode in ("batched", "fast"):
            scale["modes"][mode]["copy_rewrites"] = 0
            scale["modes"][mode]["payload_reuses"] = 0
        failures = check_exec_sim_gates({"scales": [scale]})
        assert len(failures) == 2
        assert all("copy" in f for f in failures)


class TestOutputsAreCallerOwned:
    def test_mutating_an_output_bag_does_not_corrupt_the_cache(self):
        with ReStoreSession(datanodes=2) as session:
            session.write_file("d", "a\t1\na\t2\nb\t3\n")
            source = (
                "A = load 'd' as (k, v:int); B = group A by k; "
                "store B into 'o';"
            )
            first = session.run(source)
            bag = first.outputs["o"][0][1]
            bag.append(("poison", 99))  # legacy semantics: caller-owned
            second = session.run(source)
            assert all(
                ("poison", 99) not in list(row[1]) for row in second.outputs["o"]
            )


class TestSubjobEnumBench:
    def test_enumeration_counts_and_gate(self):
        from repro.bench.subjob_enum import (
            check_subjob_enum_gates,
            run_subjob_enum_scale,
        )

        scale = run_subjob_enum_scale(40)
        assert scale["n_jobs"] == 10
        assert scale["n_anchors"] == 40
        assert scale["candidates"] == scale["expected_candidates"] == 30
        assert scale["candidates_per_sec"] > 0
        assert check_subjob_enum_gates({"scales": [scale]}) == []
        assert check_subjob_enum_gates(None) == []
        broken = dict(scale, candidates=scale["candidates"] - 1)
        failures = check_subjob_enum_gates({"scales": [broken]})
        assert failures and "expected" in failures[0]
