"""Differential tests for the zero-copy data plane + exec_sim bench.

The load-bearing guarantee: ``fast_data_plane`` changes wall time and
nothing else.  A multi-job PigMix-style workflow run with the plane on
and off must produce byte-identical DFS contents, identical
``WorkflowStats``/``JobStats`` counters, identical DFS byte counters,
and an identical rewrite/elimination decision log.
"""

import copy

from repro.bench.exec_sim import (
    SPEEDUP_FLOOR,
    build_queries,
    check_exec_sim_gates,
    generate_event_rows,
    run_exec_mode,
    run_exec_scale,
)
from repro.core.manager import ReStoreConfig
from repro.pigmix.datagen import PigMixConfig, PigMixDataGenerator
from repro.pigmix.queries import build_query
from repro.session import ReStoreSession


def _job_counters(result):
    out = []
    for run in result:
        for job_id in sorted(run.stats.job_stats):
            stats = run.stats.job_stats[job_id]
            out.append(
                (
                    job_id,
                    stats.input_records,
                    stats.map_output_records,
                    stats.shuffle_records,
                    stats.shuffle_bytes,
                    stats.reduce_groups,
                    stats.op_records,
                    tuple(sorted(stats.load_bytes.items())),
                    tuple(
                        (s.path, s.bytes, s.records, s.phase, s.side)
                        for s in stats.stores
                    ),
                    stats.sim_seconds,
                )
            )
        out.append(tuple(sorted(run.stats.eliminated_jobs)))
    return out


def _run_pigmix_stream(fast: bool):
    """A multi-job PigMix stream (L2/L3 share the join prefix, L5 is
    an anti-join, L3 again for whole-job reuse) through one session."""
    config = ReStoreConfig(fast_data_plane=fast)
    with ReStoreSession(datanodes=4, config=config) as session:
        dataset = PigMixDataGenerator(
            PigMixConfig(n_page_views=150, n_users=30, n_widerow=40)
        ).generate(session.dfs)
        results = []
        for i, query in enumerate(["L2", "L3", "L5", "L3"]):
            source = build_query(query, dataset, out=f"out/{query}_{i}")
            results.append(session.run(source, name=f"{query}_{i}"))
        snapshot = {
            path: session.dfs.read_file(path) for path in session.dfs.list_paths()
        }
        counters = _job_counters(results)
        decisions = [repr(e) for res in results for e in res.events]
        dfs_counters = (
            session.dfs.bytes_read,
            session.dfs.bytes_written,
            session.dfs.replica_bytes_written,
        )
        outputs = [res.outputs for res in results]
        return snapshot, counters, decisions, dfs_counters, outputs


class TestDifferentialPigMix:
    def test_fast_and_legacy_planes_are_equivalent(self):
        fast = _run_pigmix_stream(fast=True)
        legacy = _run_pigmix_stream(fast=False)
        snapshot_f, counters_f, decisions_f, dfs_f, outputs_f = fast
        snapshot_l, counters_l, decisions_l, dfs_l, outputs_l = legacy
        assert snapshot_f == snapshot_l  # byte-identical DFS contents
        assert counters_f == counters_l
        assert decisions_f == decisions_l
        assert dfs_f == dfs_l
        assert outputs_f == outputs_l


class TestExecSimBench:
    def test_scale_run_reports_identical(self):
        scale = run_exec_scale(300, seed=5, reps=1)
        assert scale["outputs_identical"]
        assert scale["counters_identical"]
        assert scale["dfs_counters_identical"]
        assert scale["decisions_identical"]
        assert scale["n_queries"] == len(build_queries())
        for mode in ("fast", "legacy"):
            stats = scale["modes"][mode]
            assert stats["input_records"] > 0
            assert stats["jobs_run"] > 0
            assert stats["rows_per_sec"] > 0
        # reuse actually happened: consumers were rewritten
        assert scale["modes"]["fast"]["rewrites"] > 0

    def test_mode_result_shape(self):
        rows = generate_event_rows(120, seed=5)
        queries = build_queries()[:3]
        result = run_exec_mode(rows, queries, fast=True)
        assert result.jobs_run >= len(queries)
        assert len(result.snapshot) > 0
        assert result.dfs_counters[1] > 0  # bytes_written moved

    def test_gates_green_on_identical_fast_payload(self):
        payload = {
            "scales": [
                {
                    "n_rows": 1000,
                    "speedup": SPEEDUP_FLOOR + 1.0,
                    "outputs_identical": True,
                    "counters_identical": True,
                    "dfs_counters_identical": True,
                    "decisions_identical": True,
                    "modes": {
                        "fast": {"workflow_wall_s": 0.1},
                        "legacy": {"workflow_wall_s": 0.5},
                    },
                }
            ]
        }
        assert check_exec_sim_gates(payload) == []
        assert check_exec_sim_gates(None) == []

    def test_gates_trip_on_slow_or_divergent(self):
        base = {
            "n_rows": 1000,
            "speedup": SPEEDUP_FLOOR + 1.0,
            "outputs_identical": True,
            "counters_identical": True,
            "dfs_counters_identical": True,
            "decisions_identical": True,
            "modes": {
                "fast": {"workflow_wall_s": 0.1},
                "legacy": {"workflow_wall_s": 0.5},
            },
        }
        slow = copy.deepcopy(base)
        slow["speedup"] = SPEEDUP_FLOOR - 0.5
        divergent = copy.deepcopy(base)
        divergent["outputs_identical"] = False
        failures = check_exec_sim_gates({"scales": [slow, divergent]})
        assert len(failures) == 2
        assert "below" in failures[1] or "below" in failures[0]


class TestOutputsAreCallerOwned:
    def test_mutating_an_output_bag_does_not_corrupt_the_cache(self):
        with ReStoreSession(datanodes=2) as session:
            session.write_file("d", "a\t1\na\t2\nb\t3\n")
            source = (
                "A = load 'd' as (k, v:int); B = group A by k; "
                "store B into 'o';"
            )
            first = session.run(source)
            bag = first.outputs["o"][0][1]
            bag.append(("poison", 99))  # legacy semantics: caller-owned
            second = session.run(source)
            assert all(
                ("poison", 99) not in list(row[1]) for row in second.outputs["o"]
            )
