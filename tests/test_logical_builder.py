"""Unit tests for semantic analysis (AST -> logical plan)."""

import pytest

from repro.exceptions import SchemaError
from repro.pig.logical.builder import build_logical_plan, infer_type, resolve_field
from repro.pig.logical.operators import (
    LOCogroup,
    LOFilter,
    LOForEach,
    LOJoin,
    LOLoad,
)
from repro.pig.parser import parse
from repro.relational.expressions import (
    AggCall,
    BagField,
    BagStar,
    Column,
    Const,
)
from repro.relational.schema import Schema
from repro.relational.types import DataType


def build(source):
    return build_logical_plan(parse(source))


class TestLoadAndSchema:
    def test_load_schema_types(self):
        plan = build("A = load 'd' as (u, n:int, r:double); store A into 'o';")
        load = plan.stores[0].inputs[0]
        assert isinstance(load, LOLoad)
        assert load.schema.types == (
            DataType.CHARARRAY,
            DataType.INT,
            DataType.DOUBLE,
        )

    def test_unknown_alias(self):
        with pytest.raises(SchemaError):
            build("store B into 'o';")

    def test_script_without_store(self):
        with pytest.raises(SchemaError):
            build("A = load 'd';")


class TestForeach:
    def test_projection_resolves_positions(self):
        plan = build(
            "A = load 'd' as (a, b, c); B = foreach A generate c, a;"
            "store B into 'o';"
        )
        foreach = plan.stores[0].inputs[0]
        assert isinstance(foreach, LOForEach)
        assert foreach.items[0].expr == Column(2)
        assert foreach.items[1].expr == Column(0)
        assert foreach.schema.names == ("c", "a")

    def test_generate_star(self):
        plan = build(
            "A = load 'd' as (a, b); B = foreach A generate *; store B into 'o';"
        )
        foreach = plan.stores[0].inputs[0]
        assert foreach.schema.names == ("a", "b")

    def test_alias_renames_output(self):
        plan = build(
            "A = load 'd' as (a); B = foreach A generate a as z; store B into 'o';"
        )
        assert plan.stores[0].inputs[0].schema.names == ("z",)

    def test_computed_field_type(self):
        plan = build(
            "A = load 'd' as (a:int); B = foreach A generate a * 2; "
            "store B into 'o';"
        )
        assert plan.stores[0].inputs[0].schema[0].dtype is DataType.LONG

    def test_duplicate_output_names_deduped(self):
        plan = build(
            "A = load 'd' as (a); B = foreach A generate a, a; store B into 'o';"
        )
        names = plan.stores[0].inputs[0].schema.names
        assert len(set(names)) == 2


class TestGroup:
    def test_group_schema(self):
        plan = build(
            "A = load 'd' as (u, r:double); D = group A by u; store D into 'o';"
        )
        group = plan.stores[0].inputs[0]
        assert isinstance(group, LOCogroup)
        assert group.schema.names == ("group", "A")
        assert group.schema[1].dtype is DataType.BAG
        assert group.schema[1].inner.names == ("u", "r")

    def test_group_composite_key(self):
        plan = build(
            "A = load 'd' as (a, b, c); D = group A by (a, b); store D into 'o';"
        )
        group = plan.stores[0].inputs[0]
        assert group.schema[0].dtype is DataType.TUPLE
        assert len(group.key_exprs[0]) == 2

    def test_group_all(self):
        plan = build("A = load 'd' as (a); D = group A all; store D into 'o';")
        group = plan.stores[0].inputs[0]
        assert group.group_all
        assert isinstance(group.key_exprs[0][0], Const)

    def test_aggregate_over_bag_field(self):
        plan = build(
            "A = load 'd' as (u, r:double); D = group A by u;"
            "E = foreach D generate group, SUM(A.r); store E into 'o';"
        )
        foreach = plan.stores[0].inputs[0]
        agg = foreach.items[1].expr
        assert isinstance(agg, AggCall)
        assert agg.name == "SUM"
        assert agg.arg == BagField(1, 1)

    def test_count_of_bag(self):
        plan = build(
            "A = load 'd' as (u); D = group A by u;"
            "E = foreach D generate group, COUNT(A); store E into 'o';"
        )
        agg = plan.stores[0].inputs[0].items[1].expr
        assert agg.name == "COUNT_STAR"
        assert isinstance(agg.arg, BagStar)

    def test_count_dollar_bag(self):
        plan = build(
            "A = load 'd' as (u); C = group A by u;"
            "D = foreach C generate COUNT($1); store D into 'o';"
        )
        agg = plan.stores[0].inputs[0].items[0].expr
        assert agg.name == "COUNT_STAR"

    def test_sum_over_bag_uses_first_field(self):
        plan = build(
            "A = load 'd' as (r:double); D = group A all;"
            "E = foreach D generate SUM(A); store E into 'o';"
        )
        agg = plan.stores[0].inputs[0].items[0].expr
        assert agg.arg == BagField(1, 0)

    def test_aggregate_outside_group_rejected(self):
        with pytest.raises(SchemaError):
            build(
                "A = load 'd' as (r:double); B = foreach A generate SUM(r);"
                "store B into 'o';"
            )


class TestJoin:
    def test_join_schema_qualified(self):
        plan = build(
            "A = load 'a' as (x, y); B = load 'b' as (x, z);"
            "C = join A by x, B by x; store C into 'o';"
        )
        join = plan.stores[0].inputs[0]
        assert isinstance(join, LOJoin)
        assert join.schema.names == ("A::x", "A::y", "B::x", "B::z")

    def test_join_key_resolution_per_input(self):
        plan = build(
            "A = load 'a' as (x, y); B = load 'b' as (z, x);"
            "C = join A by x, B by x; store C into 'o';"
        )
        join = plan.stores[0].inputs[0]
        assert join.key_exprs[0][0] == Column(0)
        assert join.key_exprs[1][0] == Column(1)

    def test_suffix_resolution_after_join(self):
        plan = build(
            "A = load 'a' as (x); B = load 'b' as (y);"
            "C = join A by x, B by y;"
            "D = foreach C generate y; store D into 'o';"
        )
        foreach = plan.stores[0].inputs[0]
        assert foreach.items[0].expr == Column(1)

    def test_dotted_disambiguation(self):
        plan = build(
            "A = load 'a' as (x); B = load 'b' as (x);"
            "C = join A by x, B by x;"
            "D = foreach C generate B.x; store D into 'o';"
        )
        assert plan.stores[0].inputs[0].items[0].expr == Column(1)

    def test_ambiguous_reference_rejected(self):
        with pytest.raises(SchemaError):
            build(
                "A = load 'a' as (x); B = load 'b' as (x);"
                "C = join A by x, B by x;"
                "D = foreach C generate x; store D into 'o';"
            )

    def test_key_arity_mismatch(self):
        with pytest.raises(SchemaError):
            build(
                "A = load 'a' as (x, y); B = load 'b' as (z);"
                "C = join A by (x, y), B by z; store C into 'o';"
            )

    def test_outer_flags(self):
        plan = build(
            "A = load 'a' as (x); B = load 'b' as (y);"
            "C = join A by x left outer, B by y; store C into 'o';"
        )
        assert plan.stores[0].inputs[0].outer_flags == (True, False)


class TestOtherOperators:
    def test_union_arity_check(self):
        with pytest.raises(SchemaError):
            build(
                "A = load 'a' as (x); B = load 'b' as (y, z);"
                "C = union A, B; store C into 'o';"
            )

    def test_split_desugars_to_filters(self):
        plan = build(
            "A = load 'a' as (x:int);"
            "split A into B if x > 1, C if x <= 1;"
            "store B into 'o1'; store C into 'o2';"
        )
        for store in plan.stores:
            assert isinstance(store.inputs[0], LOFilter)

    def test_filter_references_resolved(self):
        plan = build(
            "A = load 'a' as (x:int, y:int); B = filter A by y > 2;"
            "store B into 'o';"
        )
        predicate = plan.stores[0].inputs[0].predicate
        assert predicate.references() == frozenset((1,))

    def test_cogroup_schema(self):
        plan = build(
            "A = load 'a' as (x); B = load 'b' as (y);"
            "C = cogroup A by x, B by y; store C into 'o';"
        )
        cg = plan.stores[0].inputs[0]
        assert cg.schema.names == ("group", "A", "B")
        assert not cg.is_group


class TestHelpers:
    def test_resolve_field_exact(self):
        schema = Schema.of("a", "b")
        assert resolve_field(schema, "b") == 1

    def test_resolve_field_suffix(self):
        schema = Schema.of("A::x", "B::y")
        assert resolve_field(schema, "y") == 1

    def test_resolve_field_ambiguous(self):
        schema = Schema.of("A::x", "B::x")
        with pytest.raises(SchemaError):
            resolve_field(schema, "x")

    def test_infer_type_count_is_long(self):
        schema = Schema.of(("g", DataType.CHARARRAY))
        agg = AggCall("COUNT_STAR", BagStar(0))
        assert infer_type(agg, schema).dtype is DataType.LONG

    def test_infer_type_avg_is_double(self):
        schema = Schema.of(("g", DataType.CHARARRAY))
        agg = AggCall("AVG", BagField(0, 0))
        assert infer_type(agg, schema).dtype is DataType.DOUBLE
