"""The warm standby replica: tailing, rebasing, and lossless promotion.

A standby keeps an independent repository caught up by tailing the
primary persister's journal; promoting it must surrender nothing the
primary ever committed — zero lost reuse opportunities.
"""

from __future__ import annotations

import pytest

from repro.bench.repo_scale import build_repository, generate_entry_specs
from repro.core.manager import ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.persistence.durability import (
    PersistenceConfig,
    RepositoryPersister,
)
from repro.persistence.standby import StandbyReplica


@pytest.fixture
def primary(tmp_path):
    dfs = DistributedFileSystem(n_datanodes=2)
    config = PersistenceConfig(
        snapshot_path=str(tmp_path / "repo.snap"),
        journal_path=str(tmp_path / "repo.journal"),
        backend="local",
    )
    manager = ReStoreManager(dfs)
    persister = RepositoryPersister(manager, config)
    return dfs, manager, persister


def _entries(n, seed=5):
    return build_repository(generate_entry_specs(n, seed=seed), seed=seed).entries()


def _surface(repository):
    """The matching surface an observer can compare: scan order plus
    per-entry fingerprints."""
    return [
        (e.entry_id, e.plan.fingerprint(), e.output_path)
        for e in repository.ordered_entries()
    ]


class TestTailing:
    def test_standby_applies_live_mutations(self, primary):
        dfs, manager, persister = primary
        standby = StandbyReplica(persister)
        added = [manager.repository.add(e) for e in _entries(3)]
        assert len(standby) == 3
        manager.repository.remove(added[0].entry_id)
        assert len(standby) == 2
        assert not standby.repository.has_entry(added[0].entry_id)
        standby.close()

    def test_standby_rebases_after_snapshot_rotation(self, primary):
        dfs, manager, persister = primary
        standby = StandbyReplica(persister)
        for entry in _entries(2):
            manager.repository.add(entry)
        persister.take_snapshot()  # journal resets; standby must rebase
        for entry in _entries(2, seed=9)[:1]:
            entry.entry_id = ""  # fresh id past the snapshot's counter
            manager.repository.add(entry)
        assert len(standby) == 3
        assert _surface(standby.repository) == _surface(manager.repository)
        standby.close()

    def test_late_attaching_standby_catches_up(self, primary):
        dfs, manager, persister = primary
        for entry in _entries(3):
            manager.repository.add(entry)
        persister.take_snapshot()
        extra = _entries(1, seed=11)[0]
        extra.entry_id = ""  # fresh id past the snapshot's counter
        manager.repository.add(extra)
        # attaches after all of the above already happened
        standby = StandbyReplica(persister)
        assert len(standby) == 4
        standby.close()

    def test_kept_paths_tail_through(self, primary):
        dfs, manager, persister = primary
        standby = StandbyReplica(persister)
        persister.note_kept_path("tmp/s1/sj1", True)
        persister.note_kept_path("tmp/s1/sj2", True)
        persister.note_kept_path("tmp/s1/sj1", False)
        persister.flush()
        standby.catch_up()
        assert standby.kept_paths == {"tmp/s1/sj2"}
        standby.close()


class TestPromotion:
    def test_promotion_loses_nothing(self, primary):
        dfs, manager, persister = primary
        standby = StandbyReplica(persister)
        for entry in _entries(5):
            manager.repository.add(entry)
        manager.repository.remove(manager.repository.entries()[1].entry_id)
        state = standby.promote()
        assert _surface(state.repository) == _surface(manager.repository)
        standby.close()

    def test_promotion_drains_the_primary_buffer(self, primary):
        dfs, manager, persister = primary
        persister.config.flush_every = 100  # force buffering
        standby = StandbyReplica(persister)
        for entry in _entries(3):
            manager.repository.add(entry)
        # nothing flushed yet: the standby legitimately sees nothing
        assert len(standby) == 0
        state = standby.promote()  # promote must flush, then catch up
        assert len(state.repository) == 3
        assert _surface(state.repository) == _surface(manager.repository)
        standby.close()

    def test_promoted_state_drives_a_new_manager(self, primary):
        dfs, manager, persister = primary
        standby = StandbyReplica(persister)
        for entry in _entries(4):
            manager.repository.add(entry)
        persister.note_kept_path("bench/stored/e00001", True)
        persister.flush()
        state = standby.promote()
        successor = ReStoreManager(
            DistributedFileSystem(n_datanodes=2),
            repository=state.repository,
        )
        successor.kept_paths.update(state.kept_paths)
        assert _surface(successor.repository) == _surface(manager.repository)
        assert "bench/stored/e00001" in successor.kept_paths
        standby.close()

    def test_closed_standby_stops_tailing(self, primary):
        dfs, manager, persister = primary
        standby = StandbyReplica(persister)
        entries = _entries(2)
        manager.repository.add(entries[0])
        standby.close()
        manager.repository.add(entries[1])
        assert len(standby) == 1  # frozen at close time
