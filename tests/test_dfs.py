"""Unit tests for the distributed file system simulator."""

import pytest

from repro.dfs.blocks import Block, BlockId, split_into_blocks
from repro.dfs.datanode import DataNode
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.namenode import NameNode
from repro.dfs.replication import RandomPlacement, RoundRobinPlacement
from repro.exceptions import DFSError, FileAlreadyExists, FileNotFoundInDFS


class TestBlocks:
    def test_split_exact(self):
        chunks = list(split_into_blocks(b"abcdef", 2))
        assert chunks == [b"ab", b"cd", b"ef"]

    def test_split_remainder(self):
        chunks = list(split_into_blocks(b"abcde", 2))
        assert chunks == [b"ab", b"cd", b"e"]

    def test_split_empty(self):
        assert list(split_into_blocks(b"", 4)) == []

    def test_split_invalid_size(self):
        with pytest.raises(ValueError):
            list(split_into_blocks(b"ab", 0))

    def test_block_id_str(self):
        assert str(BlockId(7)) == "blk_000000000007"


class TestDataNode:
    def test_store_and_read(self):
        node = DataNode(0)
        block = Block(BlockId(1), b"hello")
        node.store_block(block)
        assert node.read_block(BlockId(1)) == b"hello"
        assert node.used_bytes == 5

    def test_read_missing_block(self):
        node = DataNode(0)
        with pytest.raises(DFSError):
            node.read_block(BlockId(99))

    def test_capacity_enforced(self):
        node = DataNode(0, capacity_bytes=4)
        node.store_block(Block(BlockId(1), b"abc"))
        with pytest.raises(DFSError):
            node.store_block(Block(BlockId(2), b"de"))

    def test_delete_block(self):
        node = DataNode(0)
        node.store_block(Block(BlockId(1), b"x"))
        node.delete_block(BlockId(1))
        assert not node.has_block(BlockId(1))

    def test_io_counters(self):
        node = DataNode(0)
        node.store_block(Block(BlockId(1), b"abcd"))
        node.read_block(BlockId(1))
        assert node.bytes_written == 4
        assert node.bytes_read == 4


class TestNameNode:
    def test_create_and_stat(self):
        nn = NameNode()
        nn.create("/f", replication=3)
        status = nn.stat("/f")
        assert status.path == "/f"
        assert status.replication == 3

    def test_create_duplicate(self):
        nn = NameNode()
        nn.create("/f", 3)
        with pytest.raises(FileAlreadyExists):
            nn.create("/f", 3)

    def test_lookup_missing(self):
        nn = NameNode()
        with pytest.raises(FileNotFoundInDFS):
            nn.lookup("/nope")

    def test_rename(self):
        nn = NameNode()
        nn.create("/a", 3)
        nn.rename("/a", "/b")
        assert nn.exists("/b")
        assert not nn.exists("/a")

    def test_rename_to_existing(self):
        nn = NameNode()
        nn.create("/a", 3)
        nn.create("/b", 3)
        with pytest.raises(FileAlreadyExists):
            nn.rename("/a", "/b")

    def test_mtime_monotonic(self):
        nn = NameNode()
        nn.create("/a", 3)
        t1 = nn.stat("/a").mtime
        nn.touch("/a")
        assert nn.stat("/a").mtime > t1

    def test_list_paths_prefix(self):
        nn = NameNode()
        nn.create("/x/1", 3)
        nn.create("/x/2", 3)
        nn.create("/y/1", 3)
        assert nn.list_paths("/x/") == ["/x/1", "/x/2"]


class TestPlacement:
    def test_round_robin_distinct(self):
        nodes = [DataNode(i) for i in range(5)]
        policy = RoundRobinPlacement()
        chosen = policy.choose(nodes, 3)
        assert len({n.node_id for n in chosen}) == 3

    def test_round_robin_rotates(self):
        nodes = [DataNode(i) for i in range(5)]
        policy = RoundRobinPlacement()
        first = policy.choose(nodes, 1)[0].node_id
        second = policy.choose(nodes, 1)[0].node_id
        assert first != second

    def test_replication_capped_by_node_count(self):
        nodes = [DataNode(i) for i in range(2)]
        assert len(RoundRobinPlacement().choose(nodes, 3)) == 2

    def test_random_placement_deterministic_with_seed(self):
        nodes = [DataNode(i) for i in range(5)]
        a = RandomPlacement(seed=1).choose(nodes, 3)
        b = RandomPlacement(seed=1).choose(nodes, 3)
        assert [n.node_id for n in a] == [n.node_id for n in b]


class TestFileSystem:
    def test_write_read_round_trip(self, dfs):
        dfs.write_file("/f", "hello world")
        assert dfs.read_text("/f") == "hello world"

    def test_write_bytes(self, dfs):
        dfs.write_file("/f", b"\x00\x01")
        assert dfs.read_file("/f") == b"\x00\x01"

    def test_multi_block_file(self):
        dfs = DistributedFileSystem(n_datanodes=3, block_size=4)
        dfs.write_file("/f", "abcdefghij")
        assert dfs.n_blocks("/f") == 3
        assert dfs.read_text("/f") == "abcdefghij"

    def test_replication_fan_out(self):
        dfs = DistributedFileSystem(n_datanodes=4, replication=3, block_size=1024)
        dfs.write_file("/f", "x" * 100)
        assert dfs.replica_bytes_written == 300

    def test_overwrite(self, dfs):
        dfs.write_file("/f", "one")
        dfs.write_file("/f", "two", overwrite=True)
        assert dfs.read_text("/f") == "two"

    def test_overwrite_without_flag_raises(self, dfs):
        dfs.write_file("/f", "one")
        with pytest.raises(FileAlreadyExists):
            dfs.write_file("/f", "two")

    def test_append(self, dfs):
        dfs.write_file("/f", "ab")
        dfs.append("/f", "cd")
        assert dfs.read_text("/f") == "abcd"

    def test_append_creates(self, dfs):
        dfs.append("/new", "x")
        assert dfs.read_text("/new") == "x"

    def test_delete_frees_blocks(self, dfs):
        dfs.write_file("/f", "data")
        used_before = dfs.total_used_bytes
        dfs.delete("/f")
        assert dfs.total_used_bytes < used_before
        assert not dfs.exists("/f")

    def test_delete_if_exists(self, dfs):
        assert dfs.delete_if_exists("/nope") is False
        dfs.write_file("/f", "x")
        assert dfs.delete_if_exists("/f") is True

    def test_read_missing(self, dfs):
        with pytest.raises(FileNotFoundInDFS):
            dfs.read_file("/missing")

    def test_read_lines_skips_empty(self, dfs):
        dfs.write_file("/f", "a\n\nb\n")
        assert dfs.read_lines("/f") == ["a", "b"]

    def test_write_lines(self, dfs):
        dfs.write_lines("/f", ["a", "b"])
        assert dfs.read_lines("/f") == ["a", "b"]

    def test_io_counters(self, dfs):
        dfs.write_file("/f", "abcd")
        dfs.read_file("/f")
        assert dfs.bytes_written == 4
        assert dfs.bytes_read == 4

    def test_file_size_and_mtime(self, dfs):
        dfs.write_file("/f", "abcd")
        assert dfs.file_size("/f") == 4
        assert dfs.mtime("/f") > 0

    def test_mtime_changes_on_rewrite(self, dfs):
        dfs.write_file("/f", "a")
        t1 = dfs.mtime("/f")
        dfs.write_file("/f", "b", overwrite=True)
        assert dfs.mtime("/f") > t1

    def test_needs_at_least_one_datanode(self):
        with pytest.raises(ValueError):
            DistributedFileSystem(n_datanodes=0)
