"""Deterministic fault injection and the self-healing JobService.

Covers the chaos surface end to end:

* fault plans and the injector are deterministic and byte-replayable —
  the same plan against the same call sequence fires the same log;
* a seeded sweep raises one fault at every registered site × timing
  and asserts the durable-state invariants unconditionally: recovery
  is idempotent, no entry is duplicated or invented, and at most the
  one quarantined entry is lost;
* the persistence circuit breaker degrades to buffered-in-memory mode
  on journal errors and recovers on its probe flush with nothing lost;
* an unreadable stored plan is quarantined, journaled, and stays gone
  across recoveries while the probe is served as a miss;
* a suppressed coordinator heartbeat promotes the warm standby and the
  failed-over service finishes the stream with the fault-free twin's
  decisions;
* ``shutdown(wait=False)`` kills a hung worker within a bound and
  surfaces the kill as a typed :class:`WorkerKilled` event;
* torn-tail journal repair fsyncs after truncating (the repair cannot
  be resurrected by a crash), pinned through the ``storage.fsync``
  site.

Seeds default to 13; set ``CHAOS_SEED`` to sweep another timeline.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.fault_resilience import _lane_dir, _seed_state
from repro.bench.repo_scale import (
    _service_workload,
    generate_entry_specs,
    generate_probe_specs,
    prepare_service_dfs,
)
from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import (
    EntryQuarantined,
    PersistenceDegraded,
    PersistenceRecovered,
    WorkerKilled,
)
from repro.faults import injector as faults
from repro.faults.injector import (
    GARBLED,
    FaultInjector,
    InjectedFault,
    registered_sites,
)
from repro.faults.plan import FaultPlan, FaultRule, StormSpec, storm_plan
from repro.persistence.durability import (
    PersistenceConfig,
    RepositoryPersister,
    recover,
)
from repro.persistence.journal import Journal, encode_record
from repro.persistence.storage import LocalStorage
from repro.service import JobService, ServiceConfig

SEED = int(os.environ.get("CHAOS_SEED", "13"))


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Every test must leave the process fault-free."""
    faults.uninstall()
    yield
    faults.uninstall()


def _probe_config() -> ReStoreConfig:
    return ReStoreConfig(inject_enabled=False, register_whole_jobs="none")


def _entry_ids(config: PersistenceConfig):
    return sorted(
        entry.entry_id for entry in recover(config).repository.entries()
    )


def _seeded_lane(tmp_path, label: str, n_entries: int = 40):
    entry_specs = generate_entry_specs(n_entries, SEED)
    snapshot = _seed_state(str(tmp_path), entry_specs, SEED)
    return entry_specs, _lane_dir(str(tmp_path), label, snapshot)


class TestPlansAndRules:
    def test_rule_validation(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(site="x", action="melt")
        with pytest.raises(ValueError, match="unknown fault timing"):
            FaultRule(site="x", action="raise", when="during")
        with pytest.raises(ValueError, match="1-based"):
            FaultRule(site="x", action="raise", hits=(0,))

    def test_sticky_rules_fire_from_first_hit_onwards(self):
        rule = FaultRule(site="x", action="suppress", hits=(3,), sticky=True)
        assert not rule.matches(2, "before", 0)
        assert rule.matches(3, "before", 0)
        assert rule.matches(9, "before", 0)

    def test_worker_targeting(self):
        rule = FaultRule(site="x", action="crash", worker=2)
        assert not rule.matches(1, "before", 0)
        assert not rule.matches(1, "before", 1)
        assert rule.matches(1, "before", 2)

    def test_storm_plan_is_seed_deterministic(self):
        spec = StormSpec(seed=SEED, n_jobs=18)
        assert storm_plan(spec) == storm_plan(StormSpec(seed=SEED, n_jobs=18))
        assert storm_plan(spec) != storm_plan(StormSpec(seed=SEED + 1))
        sites = storm_plan(spec).sites()
        for site in (
            "worker.hook",
            "worker.result",
            "journal.append",
            "coordinator.heartbeat",
        ):
            assert site in sites

    def test_with_rules_extends_without_mutating(self):
        base = storm_plan(StormSpec(seed=SEED))
        extended = base.with_rules(
            FaultRule(site="snapshot.materialize", action="raise")
        )
        assert len(extended) == len(base) + 1
        assert "snapshot.materialize" not in base.sites()


class TestInjectorDeterminism:
    def _script(self, injector: FaultInjector):
        """A fixed call sequence; returns (fired log, observed data)."""
        observed = []
        for _ in range(4):
            try:
                observed.append(injector.fire("journal.append", data=b"abc"))
            except InjectedFault as exc:
                observed.append(("raised", exc.site, exc.hit))
        observed.append(injector.fire("coordinator.heartbeat", data=7))
        observed.append(injector.fire("coordinator.heartbeat", data=8))
        return list(injector.fired), observed

    def _plan(self) -> FaultPlan:
        return FaultPlan(
            seed=SEED,
            rules=(
                FaultRule(site="journal.append", action="raise", hits=(2, 3)),
                FaultRule(
                    site="coordinator.heartbeat",
                    action="suppress",
                    hits=(2,),
                ),
            ),
        )

    def test_same_plan_same_sequence_same_log(self):
        first = self._script(FaultInjector(self._plan()))
        second = self._script(FaultInjector(self._plan()))
        assert first == second
        fired, observed = first
        assert [hit for (_, _, _, hit, _) in fired] == [2, 3, 2]
        assert observed[0] == b"abc"  # hit 1 passes through
        assert observed[1][0] == "raised"
        assert observed[-2] == 7  # hit 1 passes through
        assert observed[-1] is None  # hit 2: suppressed beat

    def test_corrupt_flips_one_byte_and_garbles_non_bytes(self):
        plan = FaultPlan(
            rules=(FaultRule(site="dfs.read", action="corrupt", hits=(1, 2)),)
        )
        injector = FaultInjector(plan)
        garbled = injector.fire("dfs.read", data=b"hello world")
        assert garbled != b"hello world"
        assert len(garbled) == len(b"hello world")
        assert injector.fire("dfs.read", data={"k": 1}) is GARBLED
        # past its scheduled hits the site is clean again
        assert injector.fire("dfs.read", data=b"xyz") == b"xyz"

    def test_revive_silences_a_sticky_site(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="coordinator.heartbeat",
                    action="suppress",
                    hits=(1,),
                    sticky=True,
                ),
            )
        )
        injector = FaultInjector(plan)
        assert injector.fire("coordinator.heartbeat", data=1) is None
        injector.revive("coordinator.heartbeat")
        assert injector.fire("coordinator.heartbeat", data=2) == 2

    def test_module_fast_path_without_injector(self):
        assert faults.active() is None
        assert faults.fire("journal.append", data=b"x") == b"x"


class TestChaosSweep:
    """One injected error at every registered site × timing.

    The durable-state invariants hold no matter where the fault lands:
    recovery stays idempotent, no entry duplicates or appears from
    nowhere, and at most one entry (a quarantined one) is lost.
    """

    @pytest.mark.parametrize(
        "site,when",
        [
            (site, when)
            for site in registered_sites()
            for when in ("before", "after")
        ],
    )
    def test_single_fault_keeps_durable_state_consistent(
        self, site, when, tmp_path
    ):
        entry_specs, config = _seeded_lane(
            tmp_path, f"{site.replace('.', '_')}-{when}"
        )
        probe_specs = generate_probe_specs(entry_specs, 3, SEED)
        baseline_ids = _entry_ids(config)
        rules = tuple(
            FaultRule(site=site, action="raise", hits=(1,), when=when, worker=w)
            for w in (0, 1)
        )
        faults.install(FaultInjector(FaultPlan(seed=SEED, rules=rules)))
        try:
            service = None
            try:
                dfs = DistributedFileSystem(n_datanodes=2)
                prepare_service_dfs(dfs, entry_specs, probe_specs)
                service = JobService(
                    dfs=dfs,
                    persistence=config,
                    config=_probe_config(),
                    service=ServiceConfig(
                        executor="processes",
                        max_workers=1,
                        retries=2,
                        exchange_timeout=10.0,
                        backoff_base_s=0.0,
                    ),
                )
            except Exception:
                service = None  # recovery-path faults fail construction
            live_ids = None
            if service is not None:
                session = service.open_session("chaos")
                for builder in _service_workload(probe_specs, "chaos/out"):
                    try:
                        session.submit_workflow(builder()).result(timeout=60)
                    except Exception:
                        pass  # the fault may surface; state must not tear
                live_ids = sorted(
                    e.entry_id for e in service.repository.entries()
                )
                try:
                    service.shutdown(wait=True)
                except Exception:
                    pass
        finally:
            faults.uninstall()

        once = _entry_ids(config)
        twice = _entry_ids(config)
        assert once == twice, "recovery must be idempotent"
        assert len(set(once)) == len(once), "no duplicated entries"
        assert set(once) <= set(baseline_ids), "no invented entries"
        if live_ids is not None:
            # zero lost or duplicated: the durable state is exactly what
            # the service held when it stopped (evictions/quarantines
            # are deliberate journaled removals, not losses)
            assert once == live_ids
        else:
            assert once == baseline_ids, (
                "a failed recovery must leave the lane untouched"
            )


class TestCircuitBreaker:
    def _persister(self, tmp_path):
        config = PersistenceConfig(
            backend="local",
            snapshot_path=str(tmp_path / "repository.snapshot"),
            journal_path=str(tmp_path / "repository.journal"),
            probe_every=3,
        )
        dfs = DistributedFileSystem(n_datanodes=2)
        manager = ReStoreManager(dfs, config=_probe_config())
        return manager, RepositoryPersister(manager, config), config

    def test_breaker_degrades_buffers_and_recovers_on_probe(self, tmp_path):
        manager, persister, config = self._persister(tmp_path)
        events = []
        persister.events.subscribe(
            events.append,
            event_types=(PersistenceDegraded, PersistenceRecovered),
        )
        faults.install(
            FaultInjector(
                FaultPlan(
                    rules=(
                        FaultRule(
                            site="journal.append", action="raise", hits=(1, 2)
                        ),
                    )
                )
            )
        )
        persister.note_kept_path("kept/one", True)  # write-through flush
        assert persister.breaker_open
        assert persister.buffered_records >= 1
        assert persister.breaker_trips == 1
        # while open, buffering is instant and only the probe flush
        # touches storage again
        persister.note_kept_path("kept/two", True)
        for _ in range(6):  # enough gated flushes to reach two probes
            persister.flush()
        assert not persister.breaker_open
        assert persister.buffered_records == 0
        assert [type(e).__name__ for e in events] == [
            "PersistenceDegraded",
            "PersistenceRecovered",
        ]
        scan = persister.journal.scan()
        assert len(scan.records) == 2, "every buffered record landed"
        persister.close()

    def test_failed_snapshot_rotation_keeps_the_journal(self, tmp_path):
        manager, persister, config = self._persister(tmp_path)
        persister.note_kept_path("kept/rotate", True)
        faults.install(
            FaultInjector(
                FaultPlan(
                    rules=(
                        FaultRule(
                            site="snapshot.write", action="raise", hits=(1,)
                        ),
                    )
                )
            )
        )
        assert persister.take_snapshot() is None
        assert persister.breaker_open
        assert persister.journal.size() > 0, (
            "aborted rotation must not reset the journal"
        )
        faults.uninstall()
        assert persister.take_snapshot() is not None
        assert persister.journal.size() == 0
        persister.close()


class TestQuarantine:
    def _drive(self, entry_specs, probe_specs, config, plan):
        """Recover the lane, run the probes through a manager, close;
        returns (ids left, quarantined events, quarantine_count)."""
        from repro.bench.repo_scale import _probe_job

        state = recover(config)
        dfs = DistributedFileSystem(n_datanodes=2)
        prepare_service_dfs(dfs, entry_specs, probe_specs)
        manager = ReStoreManager(
            dfs, repository=state.repository, config=_probe_config()
        )
        persister = RepositoryPersister(manager, config)
        quarantined = []
        manager.events.subscribe(
            quarantined.append, event_types=(EntryQuarantined,)
        )
        if plan is not None:
            faults.install(FaultInjector(plan))
        try:
            for spec in probe_specs:  # served as misses or clean matches
                job, workflow = _probe_job(spec, "quarantine/out")
                manager.before_job(job, workflow)
                manager.drain()
                manager.on_workflow_end(workflow)
        finally:
            if plan is not None:
                faults.uninstall()
        live = sorted(e.entry_id for e in manager.repository.entries())
        persister.close()
        return live, quarantined, manager.quarantine_count

    def test_unreadable_plan_is_condemned_journaled_and_stays_gone(
        self, tmp_path
    ):
        entry_specs, config = _seeded_lane(tmp_path, "quarantine")
        twin_config = _lane_dir(
            str(tmp_path), "quarantine-twin", config.snapshot_path
        )
        probe_specs = [
            spec
            for spec in generate_probe_specs(entry_specs, 8, SEED)
            if spec.kind == "hit"
        ][:2]
        assert probe_specs, "need at least one hit probe"
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="snapshot.materialize", action="raise", hits=(1,)
                ),
            )
        )

        twin_ids, twin_events, twin_count = self._drive(
            entry_specs, probe_specs, twin_config, plan=None
        )
        live, quarantined, count = self._drive(
            entry_specs, probe_specs, config, plan=plan
        )

        assert twin_count == 0 and not twin_events
        assert count == 1 and len(quarantined) == 1
        gone = quarantined[0].entry_id
        assert gone not in live
        # modulo the quarantined entry, the fault run keeps exactly the
        # fault-free twin's repository (stale-input evictions and all)
        assert live == sorted(set(twin_ids) - {gone})
        recovered_ids = _entry_ids(config)
        assert gone not in recovered_ids, "quarantine must be journaled"
        assert recovered_ids == live


class TestStandbyPromotion:
    def _run_stream(self, tmp_path, label: str, plan):
        entry_specs, config = _seeded_lane(tmp_path, label)
        probe_specs = generate_probe_specs(entry_specs, 6, SEED)
        dfs = DistributedFileSystem(n_datanodes=2)
        prepare_service_dfs(dfs, entry_specs, probe_specs)
        if plan is not None:
            faults.install(FaultInjector(plan))
        try:
            service = JobService(
                dfs=dfs,
                persistence=config,
                config=_probe_config(),
                service=ServiceConfig(
                    executor="processes",
                    max_workers=1,
                    retries=2,
                    exchange_timeout=10.0,
                    backoff_base_s=0.0,
                    standby=True,
                    heartbeat_misses=2,
                ),
            )
            session = service.open_session("tenant")
            decisions = []
            for builder in _service_workload(probe_specs, f"{label}/out"):
                outcome = session.submit_workflow(builder()).result(timeout=60)
                decisions.append(outcome.decisions)
            promotions = service.stats.promotions
            standby_armed = service.standby is not None
            final_ids = sorted(
                e.entry_id for e in service.repository.entries()
            )
            service.shutdown(wait=True)
        finally:
            if plan is not None:
                faults.uninstall()
        return decisions, promotions, standby_armed, final_ids, config

    def test_missed_heartbeats_promote_and_decisions_match_fault_free(
        self, tmp_path
    ):
        kill_plan = FaultPlan(
            seed=SEED,
            rules=(
                FaultRule(
                    site="coordinator.heartbeat",
                    action="suppress",
                    hits=(2,),
                    sticky=True,
                ),
            ),
        )
        clean = self._run_stream(tmp_path / "clean", "clean", None)
        stormy = self._run_stream(tmp_path / "kill", "kill", kill_plan)

        assert clean[1] == 0 and stormy[1] == 1, "exactly one promotion"
        assert stormy[2], "a fresh standby re-arms after promotion"
        assert stormy[0] == clean[0], (
            "the failed-over service must make the fault-free decisions"
        )
        assert stormy[3] == clean[3]
        # the promoted lane's durable state survives a restart too
        assert _entry_ids(stormy[4]) == stormy[3]


class TestShutdownKillsHungWorkers:
    def test_nonwaiting_shutdown_kills_and_reports_within_bound(
        self, tmp_path
    ):
        entry_specs, config = _seeded_lane(tmp_path, "hang")
        probe_specs = generate_probe_specs(entry_specs, 2, SEED)
        dfs = DistributedFileSystem(n_datanodes=2)
        prepare_service_dfs(dfs, entry_specs, probe_specs)
        hang_plan = FaultPlan(
            seed=SEED,
            rules=(
                FaultRule(
                    site="worker.result",
                    action="hang",
                    hits=(1,),
                    worker=1,
                    arg=30.0,
                ),
            ),
        )
        faults.install(FaultInjector(hang_plan))
        try:
            service = JobService(
                dfs=dfs,
                persistence=config,
                config=_probe_config(),
                service=ServiceConfig(
                    executor="processes",
                    max_workers=1,
                    retries=0,
                    exchange_timeout=None,  # block forever: only the
                    # non-waiting shutdown can free this submission
                ),
            )
            kills = []
            service.events.subscribe(kills.append, event_types=(WorkerKilled,))
            session = service.open_session("tenant")
            builder = _service_workload(probe_specs, "hang/out")[0]
            future = session.submit_workflow(builder())
            time.sleep(1.5)  # let the worker spawn and enter its hang
            started = time.monotonic()
            service.shutdown(wait=False)
            assert time.monotonic() - started < 10.0
            assert kills, "the hung worker's kill must surface as an event"
            assert kills[0].pid > 0
            with pytest.raises(Exception):
                future.result(timeout=20.0)
        finally:
            faults.uninstall()


class TestRepairFsync:
    def _torn_journal(self, tmp_path) -> Journal:
        path = tmp_path / "torn.journal"
        frame = encode_record({"type": "counters", "clock": 1})
        path.write_bytes(frame + frame[: len(frame) // 2])
        return Journal(LocalStorage(str(path)))

    def test_repair_truncates_and_fsyncs(self, tmp_path):
        journal = self._torn_journal(tmp_path)
        observer = FaultInjector(
            FaultPlan(
                rules=(
                    # a corrupt rule on the fsync site is a pure
                    # observer: fsync passes no payload to garble, so
                    # the only effect is the entry in the fired log
                    FaultRule(
                        site="storage.fsync", action="corrupt", hits=(1,)
                    ),
                )
            )
        )
        faults.install(observer)
        try:
            dropped = journal.repair()
        finally:
            faults.uninstall()
        assert dropped > 0
        assert not journal.scan().torn
        assert any(
            site == "storage.fsync" for (site, _, _, _, _) in observer.fired
        ), "torn-tail repair must fsync the truncated journal"

    def test_fsync_failure_during_repair_surfaces(self, tmp_path):
        journal = self._torn_journal(tmp_path)
        faults.install(
            FaultInjector(
                FaultPlan(
                    rules=(
                        FaultRule(
                            site="storage.fsync", action="raise", hits=(1,)
                        ),
                    )
                )
            )
        )
        try:
            with pytest.raises(OSError):
                journal.repair()
        finally:
            faults.uninstall()
