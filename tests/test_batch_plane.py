"""Batch-vs-row differential tests for the columnar data plane.

The contract under test: ``ReStoreConfig.batch_size`` changes wall
time and nothing else.  Whole PigMix-style streams run under every
tier — legacy text plane, per-row fast plane (``batch_size=0``), and
batched planes at several chunk sizes including pathological ones —
and every observable must match byte for byte: the full DFS snapshot,
all ``JobStats`` counters, the DFS byte counters, and the typed
decision log.  A Hypothesis differential drives the same assertion
over generated tables (nulls, skew, empty relations included).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.manager import ReStoreConfig
from repro.execution.interpreter import DEFAULT_BATCH_SIZE, JobInterpreter
from repro.relational.compiled import (
    compile_expression,
    compile_filter_list,
    compile_key,
    compile_projection,
)
from repro.relational.expressions import (
    AggCall,
    BagField,
    BagStar,
    BinaryOp,
    Column,
    Const,
    FuncCall,
    RowSample,
    UnaryOp,
)
from repro.relational.tuples import Bag
from repro.session import ReStoreSession

#: the tiers every stream is replayed under; legacy is the oracle
TIERS = [
    {"batch_size": 0},
    {"batch_size": 1},
    {"batch_size": 7},
    {"batch_size": DEFAULT_BATCH_SIZE},
]


def _run_stream(payloads, scripts, **config_kwargs):
    """Run *scripts* in one session over *payloads*; return every
    observable the planes must agree on."""
    config = ReStoreConfig(**config_kwargs)
    with ReStoreSession(datanodes=3, config=config) as session:
        for path, text in payloads.items():
            session.write_file(path, text)
        counters, decisions, outputs = [], [], []
        for i, source in enumerate(scripts):
            result = session.run(source, name=f"q{i}")
            outputs.append(result.outputs)
            decisions.extend(repr(e) for e in result.events)
            for job_id in sorted(result.stats.job_stats):
                stats = result.stats.job_stats[job_id]
                counters.append(
                    (
                        job_id,
                        stats.input_records,
                        stats.map_output_records,
                        stats.shuffle_records,
                        stats.shuffle_bytes,
                        stats.reduce_groups,
                        stats.op_records,
                        tuple(sorted(stats.load_bytes.items())),
                        tuple(
                            (s.path, s.bytes, s.records, s.phase, s.side)
                            for s in stats.stores
                        ),
                        stats.sim_seconds,
                    )
                )
            counters.append(tuple(sorted(result.stats.eliminated_jobs)))
        snapshot = {
            path: session.dfs.read_file(path) for path in session.dfs.list_paths()
        }
        dfs_counters = (
            session.dfs.bytes_read,
            session.dfs.bytes_written,
            session.dfs.replica_bytes_written,
        )
        return snapshot, counters, decisions, dfs_counters, outputs


def _assert_all_tiers_match(payloads, scripts):
    oracle = _run_stream(payloads, scripts, fast_data_plane=False)
    for tier in TIERS:
        got = _run_stream(payloads, scripts, **tier)
        for part, want, have in zip(
            ("snapshot", "counters", "decisions", "dfs_counters", "outputs"),
            oracle,
            got,
        ):
            assert have == want, f"batch tier {tier} diverged on {part}"


EVENTS = "u1\t5\t1.5\nu2\t2\t0.5\nu1\t9\t2.25\n\t4\t1.0\nu3\t7\t0.75\nu2\t8\t0.25\n"
NAMES = "u1\talice\nu9\tzed\n"


class TestDeterministicDifferentials:
    def test_filter_group_aggregate_chain_with_reuse(self):
        prefix = (
            "A = load 'data/ev' as (u:chararray, a:int, r:double);\n"
            "B = filter A by a > 3;\n"
            "C = group B by u;\n"
        )
        scripts = [
            prefix + "D = foreach C generate group, COUNT(B), SUM(B.r);\n"
            "store D into 'out/agg';",
            prefix + "D = foreach C generate group, MAX(B.r);\nstore D into 'out/d0';",
            # identical computation, new path: whole-job copy rewrite
            prefix + "D = foreach C generate group, MAX(B.r);\nstore D into 'out/d1';",
        ]
        _assert_all_tiers_match({"data/ev": EVENTS}, scripts)

    def test_left_outer_join_isolating_null_keys(self):
        scripts = [
            "A = load 'data/ev' as (u:chararray, a:int, r:double);\n"
            "B = load 'data/names' as (u:chararray, n:chararray);\n"
            "C = join A by u left outer, B by u;\n"
            "store C into 'out/join';"
        ]
        _assert_all_tiers_match({"data/ev": EVENTS, "data/names": NAMES}, scripts)

    def test_full_outer_self_join_falls_back_to_per_row(self):
        # two isolating rearranges fed from one load: the batched
        # plane must detect the null-numbering hazard and fall back
        scripts = [
            "A = load 'data/ev' as (u:chararray, a:int, r:double);\n"
            "B = load 'data/ev' as (u:chararray, a:int, r:double);\n"
            "C = join A by u full outer, B by u;\n"
            "store C into 'out/full';"
        ]
        _assert_all_tiers_match({"data/ev": EVENTS}, scripts)

    def test_order_by_with_limit(self):
        scripts = [
            "A = load 'data/ev' as (u:chararray, a:int, r:double);\n"
            "B = order A by r;\n"
            "C = limit B 3;\n"
            "store C into 'out/top';"
        ]
        _assert_all_tiers_match({"data/ev": EVENTS}, scripts)

    def test_union_distinct_and_split_stores(self):
        scripts = [
            "A = load 'data/ev' as (u:chararray, a:int, r:double);\n"
            "B = load 'data/ev2' as (u:chararray, a:int, r:double);\n"
            "C = union A, B;\n"
            "D = distinct C;\n"
            "store D into 'out/u';",
            "A = load 'data/ev' as (u:chararray, a:int, r:double);\n"
            "B = filter A by a > 3;\n"
            "store B into 'out/s1';\n"
            "store B into 'out/s2';",
        ]
        payloads = {"data/ev": EVENTS, "data/ev2": "u4\t1\t0.5\nu1\t5\t1.5\n"}
        _assert_all_tiers_match(payloads, scripts)

    def test_replicated_join(self):
        scripts = [
            "A = load 'data/ev' as (u:chararray, a:int, r:double);\n"
            "B = load 'data/names' as (u:chararray, n:chararray);\n"
            "C = join A by u, B by u using 'replicated';\n"
            "store C into 'out/fr';"
        ]
        _assert_all_tiers_match({"data/ev": EVENTS, "data/names": NAMES}, scripts)

    def test_empty_input_relation(self):
        scripts = [
            "A = load 'data/empty' as (u:chararray, a:int, r:double);\n"
            "B = filter A by a > 3;\n"
            "C = group B by u;\n"
            "D = foreach C generate group, COUNT(B);\n"
            "store D into 'out/empty';"
        ]
        _assert_all_tiers_match({"data/empty": ""}, scripts)


def _rows_to_text(rows):
    lines = []
    for u, a, r in rows:
        lines.append(
            "\t".join(
                [
                    "" if u is None else u,
                    "" if a is None else str(a),
                    "" if r is None else repr(float(r)),
                ]
            )
        )
    return "".join(line + "\n" for line in lines)


@st.composite
def event_tables(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.one_of(
                    st.none(),
                    st.sampled_from(["u1", "u2", "u3", "long_user_name"]),
                ),
                st.one_of(st.none(), st.integers(-5, 30)),
                st.one_of(
                    st.none(),
                    st.floats(
                        min_value=-10,
                        max_value=10,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                ),
            ),
            max_size=30,
        )
    )
    threshold = draw(st.integers(-2, 20))
    return rows, threshold


class TestHypothesisDifferential:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(event_tables())
    def test_pigmix_style_chain_is_tier_invariant(self, table):
        rows, threshold = table
        prefix = (
            "A = load 'data/ev' as (u:chararray, a:int, r:double);\n"
            f"B = filter A by a > {threshold};\n"
            "C = group B by u;\n"
        )
        scripts = [
            prefix + "D = foreach C generate group, COUNT(B), SUM(B.r);\n"
            "store D into 'out/agg';",
            prefix + "D = foreach C generate group;\nstore D into 'out/d0';",
            prefix + "D = foreach C generate group;\nstore D into 'out/d1';",
        ]
        _assert_all_tiers_match({"data/ev": _rows_to_text(rows)}, scripts)


ROWS = [
    ("alice", 3, 1.5, Bag([("x", 1), ("y", 2)])),
    (None, -7, 0.25, Bag([])),
    ("bob", 0, None, None),
    ("carol", 12, float(10**6), Bag([(None, 5)])),
]

EXPRESSIONS = [
    Column(0),
    Const(42),
    Const(None),
    BinaryOp(">", Column(1), Const(2)),
    BinaryOp("==", Column(0), Const("alice")),
    BinaryOp("<", Column(1), Column(2)),
    BinaryOp("+", Column(1), Const(1)),
    BinaryOp("/", Column(2), Const(0)),
    BinaryOp("and", BinaryOp(">", Column(1), Const(0)), Column(0)),
    BinaryOp("or", Column(2), Const(False)),
    UnaryOp("not", Column(1)),
    UnaryOp("neg", Column(2)),
    UnaryOp("isnull", Column(0)),
    UnaryOp("notnull", Column(2)),
    FuncCall("UPPER", (Column(0),)),
    FuncCall("CONCAT", (Column(0), Const("!"))),
    BagField(3, 1),
    BagStar(3),
    AggCall("COUNT", BagStar(3)),
    AggCall("SUM", BagField(3, 1)),
    RowSample(0.5),
]


class TestCompiledExpressions:
    @pytest.mark.parametrize("expr", EXPRESSIONS, ids=lambda e: repr(e)[:50])
    def test_compiled_matches_eval(self, expr):
        compiled = compile_expression(expr)
        for row in ROWS:
            assert compiled(row) == expr.eval(row), (expr, row)

    def test_compiled_key_matches_make_key_shapes(self):
        single = compile_key([Column(1)])
        multi = compile_key([Column(0), Column(1)])
        for row in ROWS:
            assert single(row) == row[1]
            assert multi(row) == (row[0], row[1])

    def test_compile_filter_list_matches_eval_truthiness(self):
        predicates = [
            BinaryOp(">", Column(1), Const(2)),  # codegen shape
            BinaryOp("==", Column(0), Const("alice")),  # codegen shape
            BinaryOp("and", BinaryOp(">", Column(1), Const(0)), Column(0)),
            UnaryOp("notnull", Column(2)),
        ]
        for predicate in predicates:
            filter_rows = compile_filter_list(predicate)
            want = [row for row in ROWS if bool(predicate.eval(row))]
            assert filter_rows(ROWS) == want, predicate

    def test_compile_projection_matches_foreach_semantics(self):
        project = compile_projection([Column(0), BagField(3, 0)], [False, False])
        out = project(ROWS[0])
        assert out[0] == "alice"
        assert isinstance(out[1], Bag)
        assert list(out[1]) == [("x",), ("y",)]
        # FLATTEN stays on the interpreted path
        assert compile_projection([Column(0)], [True]) is None


class TestBatchSafety:
    def test_two_isolating_rearranges_disable_batching(self, tmp_path=None):
        with ReStoreSession(datanodes=2) as session:
            session.write_file("d", EVENTS)
            workflow = session.server.compile(
                "A = load 'd' as (u:chararray, a:int, r:double);\n"
                "B = load 'd' as (u:chararray, a:int, r:double);\n"
                "C = join A by u full outer, B by u;\n"
                "store C into 'o';"
            )
            job = next(j for j in workflow.topo_order() if j.has_shuffle)
            interp = JobInterpreter(job, session.dfs)
            interp.run()
            assert interp._batching is False

    def test_single_isolating_rearrange_keeps_batching(self):
        with ReStoreSession(datanodes=2) as session:
            session.write_file("d", EVENTS)
            session.write_file("n", NAMES)
            workflow = session.server.compile(
                "A = load 'd' as (u:chararray, a:int, r:double);\n"
                "B = load 'n' as (u:chararray, n:chararray);\n"
                "C = join A by u left outer, B by u;\n"
                "store C into 'o';"
            )
            job = next(j for j in workflow.topo_order() if j.has_shuffle)
            interp = JobInterpreter(job, session.dfs)
            interp.run()
            assert interp._batching is True
