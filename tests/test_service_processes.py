"""Process-mode JobService: wire contract, parity, crash recovery.

The ``executor="processes"`` substrate splits the service into a
coordinator (DFS + sharded repository + manager) and spawned worker
processes that execute plans over a pipe protocol.  These tests pin
the layer's load-bearing guarantees:

* the :class:`JobRequest`/:class:`JobOutcome` wire contract round-trips
  through plain JSON-safe dicts with plan fingerprints preserved;
* a 1-worker-*process* service reproduces a serial run's decision log
  byte for byte (the same differential the thread pool is held to);
* per-session FIFO and cross-tenant reuse survive the process hop;
* a worker killed mid-conversation is discarded and the submission
  replays on a fresh worker — no lost entries, no duplicates, no
  leaked pins — while a clean worker-side job *error* keeps its healthy
  worker pooled;
* durable (``persistence=``) process services recover before any
  worker spawns and reserve the snapshot/journal paths;
* conflicting configuration is rejected at build time, for the
  service shorthands and the :class:`SessionBuilder` alike.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from test_service import (
    STRESS_DEADLINE_S,
    brickwork_sources,
    filter_workflow,
    prepared_dfs,
    write_datasets,
)

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.repository import Repository
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import RewriteApplied
from repro.persistence.durability import PersistenceConfig
from repro.service import (
    JobRequest,
    JobService,
    ServiceConfig,
    WorkerCrashed,
    WorkloadDriver,
)
from repro.service.procpool import ProcessJobRunner
from repro.session import ReStoreSession


def process_service(**kwargs) -> JobService:
    """A 1-process-worker service over tiny datasets (overridable)."""
    service_config = kwargs.pop(
        "service", ServiceConfig(executor="processes", max_workers=1)
    )
    config = kwargs.pop("config", ReStoreConfig(inject_enabled=False))
    return JobService(
        datanodes=2, config=config, service=service_config, **kwargs
    )


class TestWireContract:
    def test_source_request_round_trips(self):
        request = JobRequest.from_source(
            "A = load 'x' as (a); store A into 'o';",
            session_id="tenant-a",
            name="q1",
        )
        wire = request.to_wire()
        json.dumps(wire)  # pipe payloads must stay plain data
        assert JobRequest.from_wire(wire) == request

    def test_workflow_request_round_trips_with_fingerprints(self):
        workflow = filter_workflow("wire/ds", 3, "wire/out", "w1")
        request = JobRequest.from_workflow(workflow, session_id="t")
        wire = request.to_wire()
        json.dumps(wire)
        clone = JobRequest.from_wire(wire)
        assert clone.session_id == "t"
        assert clone.name == workflow.name
        assert [j.job_id for j in clone.workflow.jobs] == [
            j.job_id for j in workflow.jobs
        ]
        assert [j.plan.fingerprint() for j in clone.workflow.jobs] == [
            j.plan.fingerprint() for j in workflow.jobs
        ]

    def test_request_carries_exactly_one_payload(self):
        workflow = filter_workflow("wire/ds", 3, "wire/out", "w2")
        with pytest.raises(ValueError, match="exactly one"):
            JobRequest(source="A = load 'x';", workflow=workflow)
        with pytest.raises(ValueError, match="exactly one"):
            JobRequest(session_id="t")

    def test_service_config_validation(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ServiceConfig(executor="gpu").validate()
        with pytest.raises(ValueError, match="at least one worker"):
            ServiceConfig(max_workers=0).validate()
        with pytest.raises(ValueError, match="retries"):
            ServiceConfig(retries=-1).validate()
        assert ServiceConfig(executor="processes").validate().executor == (
            "processes"
        )


class TestProcessParity:
    def test_one_worker_process_service_equals_serial_run(self):
        """The core differential: matching stays coordinator-side, so
        one worker *process* must make byte-identical decisions."""
        sources = brickwork_sources()

        serial_session = ReStoreSession(dfs=prepared_dfs(), session_id="serial")
        serial = WorkloadDriver.run_serial(serial_session, sources)

        service = JobService(
            dfs=prepared_dfs(),
            service=ServiceConfig(executor="processes", max_workers=1),
        )
        driver = WorkloadDriver(service, n_sessions=3)
        driven = driver.run(sources)
        service.shutdown()

        assert driven.decisions == serial.decisions
        assert any(serial.decisions), "workload produced no reuse at all"
        serial_counts = Counter(
            e.plan.fingerprint() for e in serial_session.repository.entries()
        )
        service_counts = Counter(
            e.plan.fingerprint() for e in service.repository.entries()
        )
        assert serial_counts == service_counts
        for serial_result, driven_result in zip(serial.results, driven.results):
            assert serial_result.outputs == driven_result.outputs

    def test_fifo_and_whole_job_reuse_across_processes(self):
        """One tenant's identical submissions execute in order; the
        first registers coordinator-side, every later one is whole-job
        rewritten — proof the registration crossed the process hop."""
        service = process_service(
            service=ServiceConfig(executor="processes", max_workers=2)
        )
        write_datasets(service.dfs, ["proc/ds"])
        tenant = service.open_session("fifo")
        futures = [
            tenant.submit_workflow(
                filter_workflow("proc/ds", 3, f"proc/out/{j}", f"p_{j}")
            )
            for j in range(4)
        ]
        outcomes = [f.result(timeout=STRESS_DEADLINE_S) for f in futures]
        service.shutdown()
        assert [o.workflow.name for o in outcomes] == [
            f"wf-p_{j}" for j in range(4)
        ]
        assert len(service.repository) == 1
        assert outcomes[0].decisions == ()
        for outcome in outcomes[1:]:
            assert any("whole job matched" in line for line in outcome.decisions)
            assert outcome.executor == "processes"
            assert outcome.attempts == 1

    def test_cross_tenant_reuse_through_worker_processes(self):
        service = JobService(
            dfs=prepared_dfs(),
            service=ServiceConfig(executor="processes", max_workers=1),
        )
        alice = service.open_session("alice")
        bob = service.open_session("bob")
        alice.run(
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "B = filter A by action == 1; store B into 'out/a';"
        )
        result = bob.run(
            "A = load 'data/pv' as (user, action:int, revenue:double);"
            "B = filter A by action == 1;"
            "C = foreach B generate user; store C into 'out/b';"
        )
        service.shutdown()
        assert any(isinstance(e, RewriteApplied) for e in result.events)
        assert all(e.session_id == "bob" for e in result.events)
        assert result.outputs["out/b"]


class TestWorkerCrashRecovery:
    def _sabotage_first_conversation(self, service, pids):
        """Kill the worker at its first ``before_job`` exchange; later
        conversations pass through untouched, recording worker pids."""
        runner = service._runner
        original = ProcessJobRunner._on_before_job

        def handler(state, handle, message):
            pids.append(handle.pid)
            if len(pids) == 1:
                handle.process.kill()
                handle.process.join(timeout=5.0)
            return original(runner, state, handle, message)

        runner._on_before_job = handler

    def test_crashed_worker_replays_on_a_fresh_one(self):
        service = process_service(
            service=ServiceConfig(executor="processes", max_workers=1, retries=1)
        )
        write_datasets(service.dfs, ["crash/ds"])
        tenant = service.open_session("t")
        pids = []
        self._sabotage_first_conversation(service, pids)

        outcome = tenant.submit_workflow(
            filter_workflow("crash/ds", 3, "crash/out", "c1")
        ).result(timeout=STRESS_DEADLINE_S)

        assert outcome.attempts == 2
        assert service.stats.retried == 1
        assert service.stats.completed == 1
        assert service.stats.failed == 0
        # the retry ran on a different (freshly spawned) worker process
        assert len(pids) == 2 and pids[0] != pids[1]
        # rows 4..29 survive the `b > 3` filter
        assert len(outcome.single_output()) == 26
        # exactly one registration: the crashed attempt left no entry,
        # the successful one left no duplicate
        assert len(service.repository) == 1
        # the crashed conversation's pins and partial events are gone
        assert service.manager._pinned == {}
        assert service.manager.drain_session("t") == []
        assert outcome.decisions == ()

        # the repository state is live: an identical resubmission is
        # whole-job rewritten, in one attempt, on the replacement worker
        again = tenant.submit_workflow(
            filter_workflow("crash/ds", 3, "crash/out2", "c2")
        ).result(timeout=STRESS_DEADLINE_S)
        service.shutdown()
        assert again.attempts == 1
        assert any("whole job matched" in line for line in again.decisions)

    def test_exhausted_retry_budget_fails_fast_but_pool_recovers(self):
        service = process_service(
            service=ServiceConfig(executor="processes", max_workers=1, retries=0)
        )
        write_datasets(service.dfs, ["crash/ds"])
        tenant = service.open_session("t")
        pids = []
        self._sabotage_first_conversation(service, pids)

        with pytest.raises(WorkerCrashed):
            tenant.submit_workflow(
                filter_workflow("crash/ds", 3, "crash/out", "c1")
            ).result(timeout=STRESS_DEADLINE_S)
        assert service.stats.failed == 1
        assert service.stats.retried == 0
        assert service.manager._pinned == {}
        assert len(service.repository) == 0

        outcome = tenant.submit_workflow(
            filter_workflow("crash/ds", 3, "crash/out2", "c2")
        ).result(timeout=STRESS_DEADLINE_S)
        service.shutdown()
        assert len(outcome.single_output()) == 26
        assert len(pids) == 2 and pids[0] != pids[1]
        assert service.stats.completed == 1

    def test_job_error_keeps_the_worker_pooled(self):
        """A worker-side job failure completes the error protocol; the
        worker is healthy and must serve the next job (same pid) —
        discarding it would pay a spawn per bad script."""
        service = process_service()
        write_datasets(service.dfs, ["err/ds"])
        tenant = service.open_session("t")
        runner = service._runner
        original = ProcessJobRunner._on_before_job
        pids = []

        def record(state, handle, message):
            pids.append(handle.pid)
            return original(runner, state, handle, message)

        runner._on_before_job = record

        with pytest.raises(Exception, match="missing"):
            tenant.submit(
                "A = load 'err/missing' as (x); store A into 'err/o1';"
            ).result(timeout=STRESS_DEADLINE_S)
        outcome = tenant.submit_workflow(
            filter_workflow("err/ds", 3, "err/o2", "e2")
        ).result(timeout=STRESS_DEADLINE_S)
        service.shutdown()

        assert service.stats.failed == 1
        assert service.stats.retried == 0
        assert len(pids) == 2 and pids[0] == pids[1]
        assert len(outcome.single_output()) == 26
        # the failed workflow's enumerated candidates were released
        assert service.manager._pending == {}


class TestDurableProcessMode:
    CONFIG = PersistenceConfig()

    def _dfs(self) -> DistributedFileSystem:
        dfs = DistributedFileSystem(n_datanodes=2)
        dfs.write_file(
            "data/pv",
            "alice\t1\t1.5\nbob\t1\t4.0\ncarol\t2\t8.0\ndave\t2\t3.0\n",
        )
        return dfs

    def test_durable_service_recovers_before_workers_spawn(self):
        dfs = self._dfs()
        with JobService(
            dfs=dfs,
            persistence=self.CONFIG,
            service=ServiceConfig(executor="processes", max_workers=1),
        ) as service:
            # the snapshot/journal are coordinator-owned: workers must
            # never be allowed to store over them
            assert self.CONFIG.snapshot_path in service._runner.reserved_paths
            assert self.CONFIG.journal_path in service._runner.reserved_paths
            service.open_session("a").run(
                "A = load 'data/pv' as (user, action:int, revenue:double);"
                "B = filter A by action == 1; store B into 'out/d1';"
            )
            service.persister.take_snapshot()
            entries_before = len(service.repository)
        assert entries_before >= 1

        with JobService(
            dfs=dfs,
            persistence=self.CONFIG,
            service=ServiceConfig(executor="processes", max_workers=1),
        ) as successor:
            assert len(successor.repository) == entries_before
            result = successor.open_session("b").run(
                "A = load 'data/pv' as (user, action:int, revenue:double);"
                "B = filter A by action == 1;"
                "C = foreach B generate user; store C into 'out/d2';"
            )
            assert any(isinstance(e, RewriteApplied) for e in result.events)
            assert result.outputs["out/d2"]


class TestConfigConflicts:
    def test_service_shorthands_clash_with_explicit_config(self):
        with pytest.raises(ValueError, match="service= already fixes"):
            JobService(datanodes=2, service=ServiceConfig(), max_workers=2)
        with pytest.raises(ValueError, match="executor"):
            JobService(
                datanodes=2, service=ServiceConfig(), executor="processes"
            )

    def test_service_persistence_clashes_with_repository(self):
        with pytest.raises(ValueError, match="recovers its own repository"):
            JobService(
                datanodes=2,
                persistence=PersistenceConfig(),
                repository=Repository(),
            )

    def test_builder_rejects_persistence_conflicts(self):
        config = PersistenceConfig()
        with pytest.raises(ValueError, match="recovers its own repository"):
            (
                ReStoreSession.builder()
                .persistence(config)
                .repository(Repository())
                .build()
            )
        manager = ReStoreManager(DistributedFileSystem(n_datanodes=2))
        with pytest.raises(ValueError, match="RepositoryPersister"):
            (
                ReStoreSession.builder()
                .persistence(config)
                .manager(manager)
                .build()
            )
        with pytest.raises(ValueError, match="durable repository"):
            (
                ReStoreSession.builder()
                .persistence(config)
                .without_restore()
                .build()
            )

    def test_builder_rejects_manager_plus_repository(self):
        manager = ReStoreManager(DistributedFileSystem(n_datanodes=2))
        with pytest.raises(ValueError, match="already carries its repository"):
            (
                ReStoreSession.builder()
                .manager(manager)
                .repository(Repository())
                .build()
            )
