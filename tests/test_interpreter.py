"""Integration tests for the job interpreter via end-to-end queries.

Each test runs a Pig script over the micro fixture data and checks the
result rows against independently computed expectations.
"""


from repro.pig.engine import PigServer

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"


def run(server, source):
    return server.run(source)


class TestMapOnly:
    def test_filter(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = filter A by est_revenue > 2.0;
            C = foreach B generate user, est_revenue;
            store C into 'out';
        """)
        assert sorted(result.outputs["out"]) == [
            ("alice", 2.5), ("bob", 4.0), ("carol", 8.0), ("dave", 3.0),
        ]

    def test_projection_with_arithmetic(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, est_revenue * 2;
            C = filter B by user == 'bob';
            store C into 'out';
        """)
        assert result.outputs["out"] == [("bob", 8.0)]

    def test_limit(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = limit A 3;
            C = foreach B generate user;
            store C into 'out';
        """)
        assert len(result.outputs["out"]) == 3

    def test_union(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user;
            alpha = load 'data/users' as ({USERS});
            beta = foreach alpha generate name;
            C = union B, beta;
            store C into 'out';
        """)
        assert len(result.outputs["out"]) == 10  # 6 views + 4 users


class TestGroupAndAggregate:
    def test_group_sum(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, est_revenue;
            D = group B by user;
            E = foreach D generate group, SUM(B.est_revenue);
            store E into 'out';
        """)
        assert sorted(result.outputs["out"]) == [
            ("alice", 4.5), ("bob", 4.0), ("carol", 8.0), ("dave", 3.0),
        ]

    def test_group_count(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            D = group A by user;
            E = foreach D generate group, COUNT(A);
            store E into 'out';
        """)
        assert sorted(result.outputs["out"]) == [
            ("alice", 3), ("bob", 1), ("carol", 1), ("dave", 1),
        ]

    def test_group_avg_min_max(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            D = group A by user;
            E = foreach D generate group, AVG(A.est_revenue),
                MIN(A.est_revenue), MAX(A.est_revenue);
            store E into 'out';
        """)
        rows = dict((r[0], r[1:]) for r in result.outputs["out"])
        assert rows["alice"] == (1.5, 0.5, 2.5)

    def test_group_all(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            C = group A all;
            D = foreach C generate COUNT(A), SUM(A.est_revenue);
            store D into 'out';
        """)
        assert result.outputs["out"] == [(6, 19.5)]

    def test_group_composite_key(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            D = group A by (user, action);
            E = foreach D generate group, COUNT(A);
            store E into 'out';
        """)
        rows = dict(result.outputs["out"])
        assert rows[("alice", "1")] == 2

    def test_distinct(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user;
            C = distinct B;
            store C into 'out';
        """)
        assert sorted(result.outputs["out"]) == [
            ("alice",), ("bob",), ("carol",), ("dave",),
        ]


class TestJoins:
    def test_inner_join(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, est_revenue;
            alpha = load 'data/users' as ({USERS});
            beta = foreach alpha generate name, city;
            C = join beta by name, B by user;
            D = foreach C generate name, city, est_revenue;
            store D into 'out';
        """)
        rows = sorted(result.outputs["out"])
        # dave views pages but is not in users; erin is a user with no views
        assert all(r[0] != "dave" for r in rows)
        assert all(r[0] != "erin" for r in rows)
        assert ("alice", "waterloo", 1.5) in rows
        assert len(rows) == 5  # 3 alice + 1 bob + 1 carol

    def test_left_outer_join(self, server):
        result = run(server, f"""
            alpha = load 'data/users' as ({USERS});
            beta = foreach alpha generate name;
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user;
            C = join beta by name left outer, B by user;
            store C into 'out';
        """)
        rows = result.outputs["out"]
        erin_rows = [r for r in rows if r[0] == "erin"]
        assert erin_rows == [("erin", None)]

    def test_anti_join_via_outer_and_isnull(self, server):
        result = run(server, f"""
            alpha = load 'data/users' as ({USERS});
            beta = foreach alpha generate name;
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user;
            C = join beta by name left outer, B by user;
            D = filter C by user is null;
            E = foreach D generate name;
            store E into 'out';
        """)
        assert result.outputs["out"] == [("erin",)]

    def test_join_then_group(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, est_revenue;
            alpha = load 'data/users' as ({USERS});
            beta = foreach alpha generate name;
            C = join beta by name, B by user;
            D = group C by $0;
            E = foreach D generate group, SUM(C.est_revenue);
            store E into 'out';
        """)
        assert sorted(result.outputs["out"]) == [
            ("alice", 4.5), ("bob", 4.0), ("carol", 8.0),
        ]

    def test_cogroup(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, est_revenue;
            alpha = load 'data/users' as ({USERS});
            beta = foreach alpha generate name, city;
            C = cogroup B by user, beta by name;
            D = foreach C generate group, COUNT(B), COUNT(beta);
            store D into 'out';
        """)
        rows = dict((r[0], r[1:]) for r in result.outputs["out"])
        assert rows["alice"] == (3, 1)
        assert rows["dave"] == (1, 0)   # viewer, not a user
        assert rows["erin"] == (0, 1)   # user, not a viewer


class TestOrderBy:
    def test_order_ascending(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, est_revenue;
            C = order B by est_revenue;
            store C into 'out';
        """)
        revenues = [r[1] for r in result.outputs["out"]]
        assert revenues == sorted(revenues)

    def test_order_descending_numeric(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, est_revenue;
            C = order B by est_revenue desc;
            store C into 'out';
        """)
        revenues = [r[1] for r in result.outputs["out"]]
        assert revenues == sorted(revenues, reverse=True)


class TestSplitStatement:
    def test_split_branches(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            split A into HI if est_revenue > 2.0, LO if est_revenue <= 2.0;
            B = foreach HI generate user;
            C = foreach LO generate user;
            store B into 'hi';
            store C into 'lo';
        """)
        assert len(result.outputs["hi"]) == 4
        assert len(result.outputs["lo"]) == 2


class TestStats:
    def test_job_stats_collected(self, server):
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            D = group A by user;
            E = foreach D generate group, COUNT(A);
            store E into 'out';
        """)
        stats = list(result.stats.job_stats.values())[0]
        assert stats.input_records == 6
        assert stats.reduce_groups == 4
        assert stats.shuffle_records == 6
        assert stats.input_bytes > 0
        assert stats.output_bytes > 0
        assert stats.sim is not None
        assert stats.sim.total > 0

    def test_temp_cleanup(self, small_data):
        server = PigServer(small_data)
        result = run(server, f"""
            A = load 'data/page_views' as ({PV});
            B = foreach A generate user, est_revenue;
            alpha = load 'data/users' as ({USERS});
            beta = foreach alpha generate name;
            C = join beta by name, B by user;
            D = group C by $0;
            E = foreach D generate group, SUM(C.est_revenue);
            store E into 'out';
        """)
        temps = [j.output_path for j in result.workflow.jobs if j.temporary]
        assert temps
        for path in temps:
            assert not small_data.exists(path)  # stock Pig deletes temps
