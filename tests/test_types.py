"""Unit tests for repro.relational.types."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.types import (
    DataType,
    cast_value,
    format_bag,
    format_tuple,
    format_value,
    parse_bag,
    parse_text,
    parse_tuple,
)


class TestDataType:
    def test_from_name(self):
        assert DataType.from_name("int") is DataType.INT
        assert DataType.from_name("CHARARRAY") is DataType.CHARARRAY

    def test_from_name_unknown(self):
        with pytest.raises(SchemaError):
            DataType.from_name("varchar")

    def test_is_numeric(self):
        assert DataType.INT.is_numeric
        assert DataType.DOUBLE.is_numeric
        assert not DataType.CHARARRAY.is_numeric
        assert not DataType.BAG.is_numeric

    def test_is_nested(self):
        assert DataType.BAG.is_nested
        assert DataType.TUPLE.is_nested
        assert not DataType.INT.is_nested


class TestCastValue:
    def test_none_passthrough(self):
        assert cast_value(None, DataType.INT) is None

    def test_int_from_string(self):
        assert cast_value("42", DataType.INT) == 42

    def test_int_from_float_string(self):
        assert cast_value("42.7", DataType.INT) == 42

    def test_double_from_string(self):
        assert cast_value("1.5", DataType.DOUBLE) == 1.5

    def test_chararray_from_int(self):
        assert cast_value(7, DataType.CHARARRAY) == "7"

    def test_boolean_from_string(self):
        assert cast_value("true", DataType.BOOLEAN) is True
        assert cast_value("FALSE", DataType.BOOLEAN) is False

    def test_boolean_from_int(self):
        assert cast_value(1, DataType.BOOLEAN) is True
        assert cast_value(0, DataType.BOOLEAN) is False

    def test_invalid_cast_raises(self):
        with pytest.raises(SchemaError):
            cast_value("not-a-number", DataType.INT)

    def test_long_same_as_int(self):
        assert cast_value("9", DataType.LONG) == 9


class TestParseText:
    def test_empty_is_null(self):
        assert parse_text("", DataType.INT) is None
        assert parse_text("", DataType.CHARARRAY) is None

    def test_int(self):
        assert parse_text("5", DataType.INT) == 5

    def test_chararray(self):
        assert parse_text("hello", DataType.CHARARRAY) == "hello"

    def test_bag(self):
        assert parse_text("{(a,1),(b,2)}", DataType.BAG) == [
            ("a", "1"),
            ("b", "2"),
        ]

    def test_tuple(self):
        assert parse_text("(x,y)", DataType.TUPLE) == ("x", "y")


class TestFormatValue:
    def test_none(self):
        assert format_value(None) == ""

    def test_bool(self):
        assert format_value(True) == "true"
        assert format_value(False) == "false"

    def test_float_compact(self):
        assert format_value(1.5) == "1.5"

    def test_string(self):
        assert format_value("abc") == "abc"

    def test_tuple(self):
        assert format_tuple(("a", 1)) == "(a,1)"

    def test_bag(self):
        assert format_bag([("a", 1), ("b", 2)]) == "{(a,1),(b,2)}"

    def test_empty_bag(self):
        assert format_bag([]) == "{}"


class TestNestedRoundTrip:
    def test_bag_round_trip(self):
        bag = [("a", "1"), ("b", "2")]
        assert parse_bag(format_bag(bag)) == bag

    def test_empty_bag_round_trip(self):
        assert parse_bag("{}") == []

    def test_tuple_round_trip(self):
        assert parse_tuple("(a,b,c)") == ("a", "b", "c")

    def test_nested_bag_in_tuple(self):
        parsed = parse_tuple("(key,{(1,2),(3,4)})")
        assert parsed[0] == "key"
        assert parsed[1] == [("1", "2"), ("3", "4")]

    def test_malformed_bag(self):
        with pytest.raises(SchemaError):
            parse_bag("(a,b)")

    def test_malformed_tuple(self):
        with pytest.raises(SchemaError):
            parse_tuple("{a,b}")

    def test_tuple_with_empty_fields(self):
        assert parse_tuple("(a,,c)") == ("a", "", "c")
