"""Unit tests for physical operators and plan DAGs."""

import pytest

from repro.exceptions import PlanError
from repro.pig.physical.operators import (
    PhysicalOperator,
    POFilter,
    POForEach,
    POGlobalRearrange,
    POLimit,
    POLoad,
    POLocalRearrange,
    POPackage,
    POSplit,
    POStore,
    POUnion,
)
from repro.pig.physical.plan import PhysicalPlan, linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import Schema
from repro.relational.types import DataType

SCHEMA = Schema.of(("a", DataType.CHARARRAY), ("n", DataType.INT))


def simple_plan():
    load = POLoad("data/in", SCHEMA)
    filt = POFilter(BinaryOp(">", Column(1), Const(1)), schema=SCHEMA)
    store = POStore("out", schema=SCHEMA)
    return linear_plan(load, filt, store), (load, filt, store)


class TestSignatures:
    def test_load_signature_includes_path(self):
        a = POLoad("x", SCHEMA)
        b = POLoad("y", SCHEMA)
        assert a.signature() != b.signature()

    def test_store_signature_excludes_path(self):
        assert POStore("x").signature() == POStore("y").signature()

    def test_foreach_signature_by_expression(self):
        a = POForEach([Column(0)], [False], ["a"])
        b = POForEach([Column(0)], [False], ["renamed"])
        c = POForEach([Column(1)], [False], ["a"])
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()

    def test_lrearrange_branch_in_signature(self):
        a = POLocalRearrange([Column(0)], branch=0)
        b = POLocalRearrange([Column(0)], branch=1)
        assert a.signature() != b.signature()

    def test_package_mode_in_signature(self):
        a = POPackage("group", 1)
        b = POPackage("distinct", 1)
        assert a.signature() != b.signature()

    def test_invalid_package_mode(self):
        with pytest.raises(PlanError):
            POPackage("frobnicate", 1)

    def test_foreach_flattens_length_checked(self):
        with pytest.raises(PlanError):
            POForEach([Column(0)], [True, False])

    def test_operator_serialization_round_trip(self):
        ops = [
            POLoad("p", SCHEMA),
            POStore("q", SCHEMA, side=True),
            POForEach([Column(0)], [False], ["a"], schema=SCHEMA),
            POFilter(BinaryOp("==", Column(0), Const("x"))),
            POLocalRearrange([Column(0)], branch=2),
            POGlobalRearrange(2),
            POPackage("join", 2, [True, False]),
            POSplit(),
            POUnion(3),
            POLimit(10),
        ]
        for op in ops:
            restored = PhysicalOperator.from_dict(op.to_dict())
            assert restored.signature() == op.signature()

    def test_copy_gets_new_id(self):
        op = POLoad("p", SCHEMA)
        twin = op.copy()
        assert twin.op_id != op.op_id
        assert twin.signature() == op.signature()


class TestPlanStructure:
    def test_linear_plan(self):
        plan, (load, filt, store) = simple_plan()
        assert plan.sources() == [load]
        assert plan.sinks() == [store]
        assert plan.successors(load) == [filt]
        assert plan.predecessors(store) == [filt]

    def test_topo_order(self):
        plan, (load, filt, store) = simple_plan()
        order = plan.topo_order()
        assert order.index(load) < order.index(filt) < order.index(store)

    def test_cycle_detection(self):
        plan, (load, filt, store) = simple_plan()
        plan._succs[store.op_id].append(load.op_id)  # force a cycle
        plan._preds[load.op_id].append(store.op_id)
        with pytest.raises(PlanError):
            plan.topo_order()

    def test_remove_cleans_edges(self):
        plan, (load, filt, store) = simple_plan()
        plan.remove(filt)
        assert plan.successors(load) == []
        assert plan.predecessors(store) == []

    def test_insert_between(self):
        plan, (load, filt, store) = simple_plan()
        limit = POLimit(5)
        plan.insert_between(filt, store, limit)
        assert plan.successors(filt) == [limit]
        assert plan.successors(limit) == [store]

    def test_disconnect_missing_edge(self):
        plan, (load, filt, store) = simple_plan()
        with pytest.raises(PlanError):
            plan.disconnect(load, store)

    def test_upstream_closure(self):
        plan, (load, filt, store) = simple_plan()
        closure = plan.upstream_closure(store)
        assert closure == {load.op_id, filt.op_id, store.op_id}

    def test_downstream_closure(self):
        plan, (load, filt, store) = simple_plan()
        assert plan.downstream_closure(filt) == {filt.op_id, store.op_id}

    def test_contains(self):
        plan, (load, _, _) = simple_plan()
        assert load in plan
        assert POLoad("other", SCHEMA) not in plan


class TestValidation:
    def test_valid_plan(self):
        plan, _ = simple_plan()
        plan.validate()

    def test_multi_successor_requires_split(self):
        load = POLoad("in", SCHEMA)
        s1 = POStore("o1", SCHEMA)
        s2 = POStore("o2", SCHEMA)
        plan = PhysicalPlan()
        for op in (load, s1, s2):
            plan.add(op)
        plan.connect(load, s1)
        plan.connect(load, s2)
        with pytest.raises(PlanError):
            plan.validate()

    def test_split_allows_fanout(self):
        load = POLoad("in", SCHEMA)
        split = POSplit()
        s1 = POStore("o1", SCHEMA)
        s2 = POStore("o2", SCHEMA)
        plan = PhysicalPlan()
        for op in (load, split, s1, s2):
            plan.add(op)
        plan.connect(load, split)
        plan.connect(split, s1)
        plan.connect(split, s2)
        plan.validate()

    def test_two_shuffles_rejected(self):
        plan, (load, filt, store) = simple_plan()
        plan.insert_between(load, filt, POGlobalRearrange(1))
        plan.insert_between(filt, store, POGlobalRearrange(1))
        with pytest.raises(PlanError):
            plan.validate()

    def test_source_must_be_load(self):
        filt = POFilter(Const(True))
        store = POStore("o")
        plan = linear_plan(filt, store)
        with pytest.raises(PlanError):
            plan.validate()


class TestCloneAndSubplan:
    def test_clone_is_deep(self):
        plan, (load, filt, store) = simple_plan()
        clone, mapping = plan.clone()
        assert len(clone) == 3
        assert mapping[load.op_id].op_id != load.op_id
        clone.remove(mapping[filt.op_id])
        assert len(plan) == 3  # original untouched

    def test_clone_preserves_fingerprint(self):
        plan, _ = simple_plan()
        clone, _ = plan.clone()
        assert clone.fingerprint() == plan.fingerprint()

    def test_subplan_upto(self):
        plan, (load, filt, store) = simple_plan()
        sub = plan.subplan_upto(filt)
        assert len(sub) == 2
        kinds = sorted(op.kind for op in sub)
        assert kinds == ["filter", "load"]

    def test_subplan_contracts_splits(self):
        load = POLoad("in", SCHEMA)
        split = POSplit()
        side = POStore("side", SCHEMA, side=True)
        filt = POFilter(Const(True), schema=SCHEMA)
        store = POStore("out", SCHEMA)
        plan = PhysicalPlan()
        for op in (load, split, side, filt, store):
            plan.add(op)
        plan.connect(load, split)
        plan.connect(split, side)
        plan.connect(split, filt)
        plan.connect(filt, store)
        sub = plan.subplan_upto(filt)
        kinds = sorted(op.kind for op in sub)
        assert kinds == ["filter", "load"]  # no split, no side store


class TestFingerprints:
    def test_equal_plans_equal_fingerprints(self):
        plan_a, _ = simple_plan()
        plan_b, _ = simple_plan()
        assert plan_a.fingerprint() == plan_b.fingerprint()

    def test_different_filter_different_fingerprint(self):
        plan_a, _ = simple_plan()
        load = POLoad("data/in", SCHEMA)
        filt = POFilter(BinaryOp(">", Column(1), Const(99)), schema=SCHEMA)
        store = POStore("out", SCHEMA)
        plan_b = linear_plan(load, filt, store)
        assert plan_a.fingerprint() != plan_b.fingerprint()

    def test_store_path_not_in_fingerprint(self):
        load_a = POLoad("in", SCHEMA)
        load_b = POLoad("in", SCHEMA)
        plan_a = linear_plan(load_a, POStore("out1"))
        plan_b = linear_plan(load_b, POStore("out2"))
        assert plan_a.fingerprint() == plan_b.fingerprint()


class TestSerializationAndRendering:
    def test_plan_round_trip(self):
        plan, _ = simple_plan()
        restored = PhysicalPlan.from_dict(plan.to_dict())
        assert restored.fingerprint() == plan.fingerprint()
        restored.validate()

    def test_to_dot(self):
        plan, _ = simple_plan()
        dot = plan.to_dot("test")
        assert "digraph test" in dot
        assert dot.count("->") == 2

    def test_describe(self):
        plan, _ = simple_plan()
        text = plan.describe()
        assert "load" in text and "store" in text
