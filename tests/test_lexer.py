"""Unit tests for the Pig Latin tokenizer."""

import pytest

from repro.exceptions import PigParseError
from repro.pig.lexer import DOLLAR, EOF, IDENT, NUMBER, STRING, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_identifiers(self):
        assert kinds("abc _x a1")[:3] == [IDENT] * 3

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e2 4.5E-1")
        assert [t.kind for t in tokens[:-1]] == [NUMBER] * 4

    def test_string(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == STRING
        assert tokens[0].text == "hello world"

    def test_string_escape(self):
        assert tokenize(r"'a\'b'")[0].text == "a'b"

    def test_dollar(self):
        token = tokenize("$12")[0]
        assert token.kind == DOLLAR
        assert token.text == "$12"

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind == EOF

    def test_symbols(self):
        assert texts("== != <= >= :: = ; , ( ) .") == [
            "==", "!=", "<=", ">=", "::", "=", ";", ",", "(", ")", ".",
        ]


class TestComments:
    def test_line_comment(self):
        assert texts("a -- comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* skip */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(PigParseError):
            tokenize("a /* never closed")

    def test_unterminated_string(self):
        with pytest.raises(PigParseError):
            tokenize("'open")


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_column_tracking(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4

    def test_error_position(self):
        with pytest.raises(PigParseError) as err:
            tokenize("a\n  @")
        assert err.value.line == 2


class TestKeywordMatching:
    def test_case_insensitive(self):
        token = tokenize("LOAD")[0]
        assert token.matches_keyword("load")
        assert token.matches_keyword("LOAD")

    def test_group_is_plain_ident(self):
        """`group` must stay a normal identifier: it is both a keyword
        and the implicit field name of grouped relations."""
        token = tokenize("group")[0]
        assert token.kind == IDENT

    def test_dollar_without_digits(self):
        with pytest.raises(PigParseError):
            tokenize("$x")
