"""Tests for the human-readable reporting helpers."""

import pytest

from repro.core.manager import ReStoreManager
from repro.pig.engine import PigServer
from repro.reporting import (
    comparison_table,
    format_bytes,
    format_duration,
    job_report,
    manager_report,
    repository_report,
    run_report,
    workflow_report,
)

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"

QUERY = f"""
A = load 'data/page_views' as ({PV});
B = foreach A generate user, est_revenue;
D = group B by user;
E = foreach D generate group, SUM(B.est_revenue);
store E into 'out/report';
"""


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1536, "1.5 KB"),
            (3 * 1024 * 1024, "3.0 MB"),
            (5 * 1024 ** 3, "5.0 GB"),
        ],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    def test_format_duration_seconds(self):
        assert format_duration(12.34) == "12.3s"

    def test_format_duration_minutes(self):
        assert format_duration(90) == "1m30.0s"


class TestReports:
    def test_job_report(self, server):
        result = server.run(QUERY)
        stats = list(result.stats.job_stats.values())[0]
        text = job_report(stats)
        assert "input:" in text
        assert "shuffle:" in text
        assert "time:" in text
        assert "maps" in text

    def test_workflow_report(self, server):
        result = server.run(QUERY.replace("out/report", "out/wf"))
        text = workflow_report(result.workflow, result.stats)
        assert "critical path" in text
        assert "1 job(s)" in text

    def test_run_report_with_outputs(self, server):
        result = server.run(QUERY.replace("out/report", "out/rr"))
        text = run_report(result)
        assert "output out/rr" in text

    def test_reports_with_restore(self, small_data):
        manager = ReStoreManager(small_data)
        server = PigServer(small_data, restore=manager)
        server.run(QUERY)
        rerun = server.run(QUERY.replace("out/report", "out/rerun"))
        text = run_report(rerun)
        assert "ReStore activity:" in text

        repo_text = repository_report(manager.repository)
        assert "entr" in repo_text
        assert "ratio" in repo_text

        mgr_text = manager_report(manager)
        assert "whole-job elimination" in mgr_text

    def test_eliminated_job_line(self, small_data):
        manager = ReStoreManager(small_data)
        server = PigServer(small_data, restore=manager)
        server.run(QUERY)
        rerun = server.run(QUERY)  # same output path: eliminated
        text = workflow_report(rerun.workflow, rerun.stats)
        assert "eliminated" in text

    def test_empty_repository_report(self):
        from repro.core.repository import Repository

        text = repository_report(Repository())
        assert "0 entries" in text


class TestComparisonTable:
    def test_speedups(self):
        text = comparison_table(
            ["no reuse", "reusing"], [600.0, 60.0]
        )
        assert "10.00x" in text
        assert "1.00x" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            comparison_table(["a"], [1.0, 2.0])
