"""Typed event subsystem: bus semantics, manager emission, shims."""

import pytest

from repro.core.manager import ReStoreManager
from repro.events import (
    EntryEvicted,
    EventBus,
    JobEliminated,
    ReStoreEvent,
    RewriteApplied,
    SubJobDiscarded,
    SubJobStored,
    render_events,
)
from repro.session import ReStoreSession

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"

Q1 = f"""
A = load 'data/page_views' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load 'data/users' as ({USERS});
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'q1_out';
"""

Q2 = Q1.replace("store C into 'q1_out';", """
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'q2_out';
""")


class TestEventBus:
    def test_delivery_in_emission_order_with_increasing_seq(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        first = bus.emit(RewriteApplied(job_id="j1"))
        second = bus.emit(JobEliminated(job_id="j2"))
        assert seen == [first, second]
        assert [e.seq for e in seen] == sorted(e.seq for e in seen)
        assert first.seq < second.seq

    def test_subscribers_called_in_subscription_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(lambda e: calls.append("a"))
        bus.subscribe(lambda e: calls.append("b"))
        bus.emit(RewriteApplied())
        assert calls == ["a", "b"]

    def test_type_filter(self):
        bus = EventBus()
        rewrites = bus.collect(event_types=RewriteApplied)
        everything = bus.collect()
        bus.emit(RewriteApplied(job_id="j1"))
        bus.emit(EntryEvicted(entry_id="e1"))
        assert len(rewrites) == 1
        assert isinstance(rewrites[0], RewriteApplied)
        assert len(everything) == 2

    def test_type_filter_accepts_tuple(self):
        bus = EventBus()
        seen = bus.collect(event_types=(RewriteApplied, JobEliminated))
        bus.emit(SubJobStored(entry_id="e1"))
        bus.emit(JobEliminated(job_id="j1"))
        assert [type(e) for e in seen] == [JobEliminated]

    def test_predicate_filter(self):
        bus = EventBus()
        seen = bus.collect(predicate=lambda e: e.job_id == "job_2")
        bus.emit(RewriteApplied(job_id="job_1"))
        bus.emit(RewriteApplied(job_id="job_2"))
        assert len(seen) == 1
        assert seen[0].job_id == "job_2"

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.emit(RewriteApplied())
        unsubscribe()
        bus.emit(RewriteApplied())
        assert len(seen) == 1


class TestLegacyRendering:
    """render() must reproduce the pre-1.1 log lines byte-for-byte."""

    def test_subjob_rewrite(self):
        event = RewriteApplied(
            job_id="job_1", entry_id="entry_000001",
            anchor_kind="group", output_path="tmp/s1/t2",
        )
        assert event.render() == (
            "job_1: reused sub-job entry_000001 (group) from tmp/s1/t2"
        )

    def test_whole_job_copy_rewrite(self):
        event = RewriteApplied(
            job_id="job_1", entry_id="entry_000002",
            anchor_kind="whole-job", output_path="out/q1", whole_job=True,
        )
        assert event.render() == (
            "job_1: whole job matched entry_000002; rewritten to copy out/q1"
        )

    def test_elimination_redirected(self):
        event = JobEliminated(
            job_id="job_3", entry_id="entry_000004",
            output_path="tmp/s1/t1", reason="redirected",
        )
        assert event.render() == (
            "job_3: whole job answered by entry_000004; "
            "consumers redirected to tmp/s1/t1"
        )

    def test_elimination_already_stored(self):
        event = JobEliminated(
            job_id="job_3", entry_id="entry_000004",
            output_path="out/q2", reason="already-stored",
        )
        assert event.render() == "job_3: result already stored at out/q2"

    def test_discard_and_evict(self):
        assert SubJobDiscarded(
            output_path="tmp/x", reason="rule 1: too big"
        ).render() == "discarded sub-job output tmp/x: rule 1: too big"
        assert SubJobDiscarded(
            output_path="out/y", reason="rule 2", anchor_kind="whole-job"
        ).render() == "not keeping whole-job output out/y: rule 2"
        assert EntryEvicted(
            entry_id="entry_000009", policy="time-window", output_path="tmp/z"
        ).render() == "evicted entry_000009 (time-window): tmp/z"

    def test_str_matches_render(self):
        event = SubJobStored(entry_id="e", output_path="p", anchor_kind="group")
        assert str(event) == event.render()
        assert render_events([event]) == [event.render()]


class TestManagerEmitsTypedEvents:
    def test_run_produces_only_dataclass_events(self, small_data):
        session = ReStoreSession(dfs=small_data)
        session.run(Q1)
        result = session.run(Q2)
        assert result.events
        assert all(isinstance(e, ReStoreEvent) for e in result.events)

    def test_elimination_event_carries_structure(self, small_data):
        session = ReStoreSession(dfs=small_data)
        session.run(Q1)
        result = session.run(Q2)
        eliminations = [
            e for e in result.events if isinstance(e, JobEliminated)
        ]
        assert eliminations
        assert eliminations[0].entry_id.startswith("entry_")
        assert eliminations[0].output_path

    def test_store_events_on_first_run(self, small_data):
        session = ReStoreSession(dfs=small_data)
        result = session.run(Q1)
        stored = [e for e in result.events if isinstance(e, SubJobStored)]
        assert stored
        assert {e.entry_id for e in stored} <= {
            entry.entry_id for entry in session.repository
        }

    def test_bus_subscription_sees_events_live(self, small_data):
        session = ReStoreSession(dfs=small_data)
        live = session.events.collect(event_types=JobEliminated)
        session.run(Q1)
        assert live == []
        session.run(Q2)
        assert live  # delivered during run, before drain

    def test_legacy_strings_projects_typed_events(self, small_data):
        session = ReStoreSession(dfs=small_data)
        session.run(Q1)
        result = session.run(Q2)
        assert ReStoreManager.legacy_strings(result.events) == [
            e.render() for e in result.events
            if not isinstance(e, SubJobStored)
        ]


class TestLegacyStringProjection:
    def test_legacy_strings_renders(self, small_data):
        manager = ReStoreManager(small_data)
        manager._emit(RewriteApplied(
            job_id="job_1", entry_id="entry_000001",
            anchor_kind="group", output_path="tmp/s1/t2",
        ))
        assert ReStoreManager.legacy_strings(manager.drain()) == [
            "job_1: reused sub-job entry_000001 (group) from tmp/s1/t2"
        ]
        assert manager.drain() == []  # drained

    def test_legacy_strings_hide_store_events(self, small_data):
        manager = ReStoreManager(small_data)
        manager._emit(SubJobStored(entry_id="e", output_path="p"))
        assert ReStoreManager.legacy_strings(manager.drain()) == []

    def test_typed_drain_returns_everything(self, small_data):
        manager = ReStoreManager(small_data)
        manager._emit(SubJobStored(entry_id="e", output_path="p"))
        drained = manager.drain()
        assert len(drained) == 1
        assert manager.drain() == []
