"""Tests for the §7.5 synthetic workload (Table 2, QP, QF)."""

import pytest

from repro.dfs.filesystem import DistributedFileSystem
from repro.pig.engine import PigServer
from repro.pigmix.synthetic import (
    FIELD_NAMES,
    TABLE2_FIELDS,
    SyntheticConfig,
    SyntheticDataGenerator,
    expected_selectivity,
    qf_query,
    qp_query,
)

CONFIG = SyntheticConfig(n_rows=1500, seed=3)


@pytest.fixture(scope="module")
def synth():
    dfs = DistributedFileSystem(n_datanodes=4)
    dataset = SyntheticDataGenerator(CONFIG).generate(dfs)
    return dfs, dataset


class TestGenerator:
    def test_field_count(self, synth):
        dfs, dataset = synth
        line = dfs.read_lines(dataset.path)[0]
        assert len(line.split("\t")) == 12

    def test_string_fields_are_20_chars(self, synth):
        dfs, dataset = synth
        for line in dfs.read_lines(dataset.path)[:20]:
            for value in line.split("\t")[:5]:
                assert len(value) == 20

    @pytest.mark.parametrize("field_name", list(TABLE2_FIELDS))
    def test_table2_selectivity(self, synth, field_name):
        """Measured selectivity of `field == 0` tracks Table 2."""
        dfs, dataset = synth
        index = FIELD_NAMES.index(field_name)
        values = [
            int(line.split("\t")[index])
            for line in dfs.read_lines(dataset.path)
        ]
        measured = sum(1 for v in values if v == 0) / len(values)
        expected = expected_selectivity(field_name)
        assert measured == pytest.approx(expected, rel=0.5, abs=0.01)

    @pytest.mark.parametrize(
        "field_name,cardinality",
        [(f, c) for f, (c, _) in TABLE2_FIELDS.items() if isinstance(c, int)],
    )
    def test_cardinalities(self, synth, field_name, cardinality):
        dfs, dataset = synth
        index = FIELD_NAMES.index(field_name)
        values = {
            line.split("\t")[index] for line in dfs.read_lines(dataset.path)
        }
        assert len(values) <= cardinality

    def test_field12_two_values(self, synth):
        dfs, dataset = synth
        index = FIELD_NAMES.index("field12")
        values = {
            int(line.split("\t")[index])
            for line in dfs.read_lines(dataset.path)
        }
        assert values == {0, 1}

    def test_deterministic(self):
        a = SyntheticDataGenerator(CONFIG).rows()
        b = SyntheticDataGenerator(CONFIG).rows()
        assert a == b

    def test_data_scale_targets_40gb(self, synth):
        _, dataset = synth
        from repro.pigmix.synthetic import SYNTHETIC_DECLARED_BYTES

        assert dataset.data_scale * dataset.actual_bytes == pytest.approx(
            SYNTHETIC_DECLARED_BYTES
        )


class TestQueryTemplates:
    def test_qp_projects_k_fields(self, synth):
        dfs, dataset = synth
        result = PigServer(dfs).run(qp_query(dataset, 2, "out/qp2"))
        assert len(result.outputs["out/qp2"]) > 0

    def test_qp_counts_are_positive(self, synth):
        dfs, dataset = synth
        result = PigServer(dfs).run(qp_query(dataset, 1, "out/qp1"))
        assert all(row[0] >= 1 for row in result.outputs["out/qp1"])

    def test_qp_field_range_checked(self, synth):
        _, dataset = synth
        with pytest.raises(ValueError):
            qp_query(dataset, 6, "o")
        with pytest.raises(ValueError):
            qp_query(dataset, 0, "o")

    def test_qf_filters_rows(self, synth):
        dfs, dataset = synth
        result = PigServer(dfs).run(qf_query(dataset, "field11", "out/qf"))
        total = sum(row[0] for row in result.outputs["out/qf"])
        expected = CONFIG.n_rows * expected_selectivity("field11")
        assert total == pytest.approx(expected, rel=0.25)

    def test_qf_highly_selective(self, synth):
        dfs, dataset = synth
        result = PigServer(dfs).run(qf_query(dataset, "field6", "out/qf6"))
        total = sum(row[0] for row in result.outputs["out/qf6"])
        assert total < CONFIG.n_rows * 0.05

    def test_qf_unknown_field(self, synth):
        _, dataset = synth
        with pytest.raises(ValueError):
            qf_query(dataset, "field1", "o")
