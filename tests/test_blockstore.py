"""Native payload durability: the block store and the recovery scrub.

The contract mirrors the journal's: a crash can tear a block-store
append at *any* byte, and recovery must (a) restore byte-identical
payloads for every entry whose segment survived intact, and (b)
condemn — never serve — every entry whose payload is missing, torn,
or corrupt.  The new ``partial`` and ``slow`` fault actions drive the
torn-write and slow-disk timelines deterministically.

Seeds default to 13; set ``CHAOS_SEED`` to sweep another timeline.
"""

from __future__ import annotations

import os
import time
import zlib

import pytest

from repro.bench.repo_scale import build_repository, generate_entry_specs
from repro.core.manager import ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import EntryQuarantined
from repro.faults import injector as faults
from repro.faults.injector import (
    FaultInjector,
    InjectedFault,
    PartialWriteFault,
)
from repro.faults.plan import FaultPlan, FaultRule
from repro.persistence.blockstore import (
    BlockStore,
    BlockStoreError,
    SegmentRef,
    decode_blockstore,
    encode_segment,
    verify_ref,
)
from repro.persistence.durability import (
    PersistenceConfig,
    RepositoryPersister,
    announce_scrub_condemnations,
    recover,
)
from repro.persistence.journal import Journal
from repro.persistence.snapshot import RepositorySnapshot
from repro.persistence.storage import LocalStorage

SEED = int(os.environ.get("CHAOS_SEED", "13"))

FRAMES = [
    encode_segment("tmp/s1/sj1", b"payload-one"),
    encode_segment("tmp/s1/sj2", b"payload-two-longer"),
    encode_segment("tmp/s2/sj7", b"p3"),
]
LAST = FRAMES[-1]


def _config(tmp_path) -> PersistenceConfig:
    return PersistenceConfig(
        snapshot_path=str(tmp_path / "repo.snap"),
        journal_path=str(tmp_path / "repo.journal"),
        backend="local",
    )


def _persister(tmp_path):
    dfs = DistributedFileSystem(n_datanodes=2)
    config = _config(tmp_path)
    manager = ReStoreManager(dfs)
    persister = RepositoryPersister(manager, config)
    return dfs, config, manager, persister


def _payload_for(path: str) -> bytes:
    return f"bytes:{path}".encode()


def _add_entries(dfs, manager, n=3, seed=5):
    """Register *n* entries live-style: output bytes land in the DFS
    first, so the persister captures them into the block store."""
    entries = build_repository(generate_entry_specs(n, seed=seed), seed=seed)
    added = []
    for entry in entries.entries():
        dfs.write_file(entry.output_path, _payload_for(entry.output_path))
        added.append(manager.repository.add(entry))
    return added


class TestSegmentCodec:
    def test_round_trip_through_store(self, tmp_path):
        store = BlockStore(LocalStorage(str(tmp_path / "b.g0")), 0)
        refs = {
            path: store.append(path, data)
            for path, data in (("a/b", b"xx"), ("c/d", b"yyyy"))
        }
        scan = store.scan()
        assert len(scan.segments) == 2
        assert not scan.torn
        assert verify_ref(scan, refs["a/b"], "a/b") == b"xx"
        assert verify_ref(scan, refs["c/d"], "c/d") == b"yyyy"

    def test_ref_is_offset_length_and_payload_crc(self, tmp_path):
        store = BlockStore(LocalStorage(str(tmp_path / "b.g3")), 3)
        ref = store.append("p", b"data")
        assert ref.gen == 3
        assert ref.offset == 0
        assert ref.length == len(encode_segment("p", b"data"))
        assert ref.crc == zlib.crc32(b"data")
        assert SegmentRef.from_list(ref.to_list()) == ref

    def test_malformed_ref_rejected(self):
        with pytest.raises(BlockStoreError, match="malformed"):
            SegmentRef.from_list([1, 2, 3])

    def test_overlong_path_rejected(self):
        with pytest.raises(BlockStoreError, match="too long"):
            encode_segment("x" * 0x10000, b"")

    @pytest.mark.parametrize("cut", range(len(LAST)))
    def test_every_byte_boundary_of_last_segment(self, cut):
        """Tear the last segment at byte *cut*: the two intact segments
        always survive; the tail is torn except at cut == 0."""
        data = b"".join(FRAMES[:-1]) + LAST[:cut]
        scan = decode_blockstore(data)
        assert len(scan.segments) == 2
        assert scan.clean_bytes == len(FRAMES[0]) + len(FRAMES[1])
        assert scan.torn == (cut > 0)
        assert scan.torn_bytes == cut

    def test_bit_rot_mid_file_is_quarantined_not_torn(self):
        data = bytearray(b"".join(FRAMES))
        data[len(FRAMES[0]) + 12] ^= 0xFF  # inside the middle segment
        scan = decode_blockstore(bytes(data))
        assert scan.skipped == 1
        assert not scan.torn  # an intact frame followed: resync, no tear
        paths = {path for _, path, _ in scan.segments.values()}
        assert paths == {"tmp/s1/sj1", "tmp/s2/sj7"}

    def test_repair_truncates_in_place(self, tmp_path):
        path = tmp_path / "b.g0"
        path.write_bytes(b"".join(FRAMES) + LAST[:5])
        store = BlockStore(LocalStorage(str(path)), 0)
        assert store.repair() == 5
        rescan = store.scan()
        assert not rescan.torn
        assert len(rescan.segments) == 3
        # the repaired store appends cleanly at the segment boundary
        store.append("tmp/s9/sj9", b"fresh")
        assert len(store.scan().segments) == 4

    def test_verify_ref_catches_every_drift(self):
        scan = decode_blockstore(b"".join(FRAMES))
        ref = SegmentRef(0, 0, len(FRAMES[0]), zlib.crc32(b"payload-one"))
        assert verify_ref(scan, ref, "tmp/s1/sj1") == b"payload-one"
        # missing segment (offset never written / torn away)
        assert verify_ref(scan, SegmentRef(0, 999, 10, ref.crc), "x") is None
        # length drift
        bad_len = SegmentRef(0, 0, ref.length + 1, ref.crc)
        assert verify_ref(scan, bad_len, "tmp/s1/sj1") is None
        # substitution: the segment frames another path
        assert verify_ref(scan, ref, "tmp/other") is None
        # content drift: stored bytes no longer match the recorded crc
        bad_crc = SegmentRef(0, 0, ref.length, ref.crc ^ 1)
        assert verify_ref(scan, bad_crc, "tmp/s1/sj1") is None


class TestEveryByteCrashRecovery:
    """The tentpole gate, as a test: crash a block-store append at
    every byte boundary; recovery never leaves an entry referencing a
    missing or corrupt payload."""

    def test_every_cut_recovers_with_no_corrupt_refs(self, tmp_path):
        dfs, config, manager, persister = _persister(tmp_path)
        added = _add_entries(dfs, manager, n=2, seed=SEED)
        block_path = tmp_path / "repo.snap.blocks.g0"
        journal_bytes = (tmp_path / "repo.journal").read_bytes()
        block_bytes = block_path.read_bytes()
        base = decode_blockstore(block_bytes)
        assert len(base.segments) == 2 and not base.torn
        last_offset = max(base.segments)
        last_length = base.segments[last_offset][0]
        for cut in range(last_length + 1):
            # rewind the lane: recovery repairs/journals in place
            (tmp_path / "repo.journal").write_bytes(journal_bytes)
            block_path.write_bytes(block_bytes[: last_offset + cut])
            fresh = DistributedFileSystem(n_datanodes=2)
            recovered = recover(config, fresh)
            survivors = {
                e.output_path for e in recovered.repository.entries()
            }
            condemned = {p for _, p, _ in recovered.payloads_condemned}
            assert survivors | condemned == {
                e.output_path for e in added
            }, f"entry lost without condemnation at cut={cut}"
            assert not (survivors & condemned)
            # the invariant: every survivor serves byte-identical data
            for path in survivors:
                assert fresh.read_file(path) == _payload_for(path), (
                    f"corrupt payload served at cut={cut}"
                )
            if cut == last_length:
                assert condemned == set()
            else:
                assert condemned == {added[-1].output_path}

    def test_condemnation_is_journaled_and_replay_idempotent(self, tmp_path):
        dfs, config, manager, persister = _persister(tmp_path)
        added = _add_entries(dfs, manager, n=3, seed=SEED)
        # the whole block file vanishes: every payload ref is orphaned
        (tmp_path / "repo.snap.blocks.g0").unlink()
        first = recover(config, DistributedFileSystem(n_datanodes=2))
        assert len(first.repository) == 0
        assert {p for _, p, _ in first.payloads_condemned} == {
            e.output_path for e in added
        }
        # the scrub journaled entry_quarantined: a second recovery
        # replays the condemnations instead of re-deriving them
        second = recover(config, DistributedFileSystem(n_datanodes=2))
        assert len(second.repository) == 0
        assert second.payloads_condemned == []

    def test_corrupt_segment_condemns_only_its_entry(self, tmp_path):
        dfs, config, manager, persister = _persister(tmp_path)
        added = _add_entries(dfs, manager, n=3, seed=SEED)
        block_path = tmp_path / "repo.snap.blocks.g0"
        data = bytearray(block_path.read_bytes())
        scan = decode_blockstore(bytes(data))
        victim_offset = sorted(scan.segments)[1]
        # flip a payload byte inside the middle segment
        data[victim_offset + 12] ^= 0xFF
        block_path.write_bytes(bytes(data))
        fresh = DistributedFileSystem(n_datanodes=2)
        recovered = recover(config, fresh)
        assert len(recovered.repository) == 2
        assert len(recovered.payloads_condemned) == 1
        for entry in recovered.repository.entries():
            assert fresh.read_file(entry.output_path) == _payload_for(
                entry.output_path
            )

    def test_entry_without_bytes_or_ref_is_condemned(self, tmp_path):
        dfs, config, manager, persister = _persister(tmp_path)
        # the output bytes never existed, so no segment was captured —
        # on a fresh DFS there is nothing to serve: condemn
        entries = build_repository(generate_entry_specs(1, seed=SEED), SEED)
        manager.repository.add(entries.entries()[0])
        recovered = recover(config, DistributedFileSystem(n_datanodes=2))
        assert len(recovered.repository) == 0
        assert len(recovered.payloads_condemned) == 1
        _, _, reason = recovered.payloads_condemned[0]
        assert "missing" in reason

    def test_announce_emits_quarantine_events(self, tmp_path):
        dfs, config, manager, persister = _persister(tmp_path)
        added = _add_entries(dfs, manager, n=2, seed=SEED)
        (tmp_path / "repo.snap.blocks.g0").unlink()
        fresh = DistributedFileSystem(n_datanodes=2)
        recovered = recover(config, fresh)
        twin = ReStoreManager(fresh)
        events = []
        twin.events.subscribe(events.append, event_types=(EntryQuarantined,))
        announce_scrub_condemnations(twin, recovered)
        assert twin.quarantine_count == 2
        assert {e.output_path for e in events} == {
            e.output_path for e in added
        }
        assert all(e.reason.startswith("payload-scrub:") for e in events)


class TestPartialAndSlowActions:
    def test_partial_append_lands_prefix_then_raises(self, tmp_path):
        faults.install(
            FaultPlan(
                seed=SEED,
                rules=(
                    FaultRule(
                        site="blockstore.append", action="partial", arg=5
                    ),
                ),
            )
        )
        store = BlockStore(LocalStorage(str(tmp_path / "b.g0")), 0)
        with pytest.raises(PartialWriteFault):
            store.append("p", b"payload")
        faults.uninstall()
        assert store.size() == 5  # the torn prefix really landed
        scan = store.scan()
        assert scan.torn and not scan.segments
        store.repair(scan)
        ref = store.append("p", b"payload")
        assert verify_ref(store.scan(), ref, "p") == b"payload"

    def test_partial_arg_zero_lands_nothing(self, tmp_path):
        faults.install(
            FaultPlan(
                seed=SEED,
                rules=(
                    FaultRule(
                        site="journal.append", action="partial", arg=0
                    ),
                ),
            )
        )
        journal = Journal(LocalStorage(str(tmp_path / "wal")))
        with pytest.raises(PartialWriteFault):
            journal.append_payloads([{"type": "kept_path_added", "path": "x"}])
        faults.uninstall()
        assert not (tmp_path / "wal").exists() or (
            len((tmp_path / "wal").read_bytes()) == 0
        )

    def test_partial_journal_append_tears_mid_record(self, tmp_path):
        faults.install(
            FaultPlan(
                seed=SEED,
                rules=(
                    FaultRule(
                        site="journal.append", action="partial", arg=7
                    ),
                ),
            )
        )
        journal = Journal(LocalStorage(str(tmp_path / "wal")))
        with pytest.raises(PartialWriteFault):
            journal.append_payloads([{"type": "kept_path_added", "path": "x"}])
        faults.uninstall()
        scan = journal.scan()
        assert scan.torn and scan.torn_bytes == 7 and not scan.records
        journal.repair()
        journal.append_payloads([{"type": "kept_path_added", "path": "x"}])
        assert len(journal.scan().records) == 1

    def test_slow_disk_delays_but_preserves_bytes(self, tmp_path):
        faults.install(
            FaultPlan(
                seed=SEED,
                rules=(
                    FaultRule(
                        site="blockstore.append", action="slow", arg=0.05
                    ),
                ),
            )
        )
        store = BlockStore(LocalStorage(str(tmp_path / "b.g0")), 0)
        started = time.monotonic()
        ref = store.append("p", b"unhurried")
        elapsed = time.monotonic() - started
        assert elapsed >= 0.04
        assert verify_ref(store.scan(), ref, "p") == b"unhurried"

    def test_partial_snapshot_write_aborts_rotation_journal_intact(
        self, tmp_path
    ):
        dfs, config, manager, persister = _persister(tmp_path)
        added = _add_entries(dfs, manager, n=2, seed=SEED)
        journal_len = len((tmp_path / "repo.journal").read_bytes())
        faults.install(
            FaultPlan(
                seed=SEED,
                rules=(
                    FaultRule(
                        site="snapshot.write", action="partial", arg=9
                    ),
                ),
            )
        )
        persister.take_snapshot()  # breaker: degraded, not raised
        faults.uninstall()
        # the rotation aborted: no snapshot, the journal was NOT reset
        assert not (tmp_path / "repo.snap").exists()
        assert len((tmp_path / "repo.journal").read_bytes()) >= journal_len
        recovered = recover(config, DistributedFileSystem(n_datanodes=2))
        assert len(recovered.repository) == len(added)
        assert recovered.payloads_condemned == []


class TestInjectorHygiene:
    def test_reset_zeroes_clocks_fired_and_revived(self):
        plan = FaultPlan(
            seed=SEED,
            rules=(FaultRule(site="blockstore.read", action="raise"),),
        )
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            injector.fire("blockstore.read")
        injector.fire("blockstore.read")  # hit 2: rule spent
        injector.revive("blockstore.read")
        assert injector.fired and injector.clock.hits("blockstore.read") == 2
        injector.reset()
        assert not injector.fired
        assert injector.clock.hits("blockstore.read") == 0
        # the same one-shot rule fires again from a clean clock
        with pytest.raises(InjectedFault):
            injector.fire("blockstore.read")


class TestTimerRotation:
    def _wait_for(self, predicate, timeout_s=5.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return predicate()

    def test_interval_rotates_snapshot_without_workflow_boundary(
        self, tmp_path
    ):
        dfs = DistributedFileSystem(n_datanodes=2)
        config = PersistenceConfig(
            snapshot_path=str(tmp_path / "repo.snap"),
            journal_path=str(tmp_path / "repo.journal"),
            backend="local",
            snapshot_interval_s=0.05,
        )
        manager = ReStoreManager(dfs)
        persister = RepositoryPersister(manager, config)
        try:
            added = _add_entries(dfs, manager, n=2, seed=SEED)
            assert self._wait_for(
                lambda: (tmp_path / "repo.snap").exists()
            ), "the timer never rotated a snapshot"
        finally:
            persister.close()
        snapshot = RepositorySnapshot.from_bytes(
            config.snapshot_storage().read()
        )
        assert len(snapshot.payload["repository"]["entries"]) == 2
        # rotation compacted the payloads into the snapshot's table
        assert set(snapshot.payload_state["refs"]) == {
            e.output_path for e in added
        }
        recovered = recover(config, DistributedFileSystem(n_datanodes=2))
        assert len(recovered.repository) == 2
        assert recovered.payloads_condemned == []

    def test_rotation_failure_keeps_journal_intact(self, tmp_path):
        dfs = DistributedFileSystem(n_datanodes=2)
        config = PersistenceConfig(
            snapshot_path=str(tmp_path / "repo.snap"),
            journal_path=str(tmp_path / "repo.journal"),
            backend="local",
            snapshot_interval_s=0.03,
        )
        faults.install(
            FaultPlan(
                seed=SEED,
                rules=(
                    FaultRule(
                        site="snapshot.write",
                        action="raise",
                        sticky=True,
                    ),
                ),
            )
        )
        manager = ReStoreManager(dfs)
        persister = RepositoryPersister(manager, config)
        try:
            _add_entries(dfs, manager, n=2, seed=SEED)
            # let the timer attempt (and fail) at least one rotation
            assert self._wait_for(
                lambda: faults.active().clock.hits("snapshot.write") >= 1
            )
        finally:
            persister.close()
            faults.uninstall()
        assert not (tmp_path / "repo.snap").exists()
        recovered = recover(config, DistributedFileSystem(n_datanodes=2))
        assert len(recovered.repository) == 2
        assert recovered.payloads_condemned == []


class TestSidecarMigration:
    def test_legacy_sidecar_imported_once_then_retired(self, tmp_path):
        from repro.cli import _migrate_sidecar, _sidecar_dir

        repo = build_repository(generate_entry_specs(3, seed=SEED), SEED)
        repo.ordered_entries()
        config = _config(tmp_path)
        # a legacy lane: snapshot without a payloads table, bytes only
        # in the .files/ sidecar
        config.snapshot_storage().write(
            RepositorySnapshot.capture(repo).to_bytes()
        )
        sidecar = _sidecar_dir(config)
        for entry in repo.entries():
            local = sidecar / entry.output_path
            local.parent.mkdir(parents=True, exist_ok=True)
            local.write_bytes(_payload_for(entry.output_path))
        assert _migrate_sidecar(config) == 3
        assert not sidecar.exists()  # retired: never written again
        assert _migrate_sidecar(config) == 0  # one-shot
        fresh = DistributedFileSystem(n_datanodes=2)
        recovered = recover(config, fresh)
        assert len(recovered.repository) == 3
        assert recovered.payloads_condemned == []
        for entry in recovered.repository.entries():
            assert fresh.read_file(entry.output_path) == _payload_for(
                entry.output_path
            )
