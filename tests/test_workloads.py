"""Tests for the workload-stream generator and ablation harnesses."""

import pytest

from repro.experiments.ablations import (
    run_optimizer_ablation,
    run_ordering_ablation,
    run_workload_stream,
)
from repro.pig.engine import PigServer
from repro.pigmix.datagen import PigMixConfig, PigMixDataGenerator
from repro.workloads.generator import WorkloadConfig, WorkloadGenerator

CFG = PigMixConfig(n_page_views=120, n_users=20, n_power_users=5, n_widerow=40)


class TestWorkloadGenerator:
    @pytest.fixture
    def dataset(self, pigmix_dfs):
        return PigMixDataGenerator(CFG).generate(pigmix_dfs)

    def test_deterministic(self, dataset):
        a = WorkloadGenerator(dataset, WorkloadConfig(seed=9)).generate()
        b = WorkloadGenerator(dataset, WorkloadConfig(seed=9)).generate()
        assert [q.source for q in a] == [q.source for q in b]

    def test_seed_changes_stream(self, dataset):
        a = WorkloadGenerator(dataset, WorkloadConfig(seed=1)).generate()
        b = WorkloadGenerator(dataset, WorkloadConfig(seed=2)).generate()
        assert [q.source for q in a] != [q.source for q in b]

    def test_query_count(self, dataset):
        queries = WorkloadGenerator(
            dataset, WorkloadConfig(n_queries=7)
        ).generate()
        assert len(queries) == 7

    def test_unique_output_paths(self, dataset):
        queries = WorkloadGenerator(dataset, WorkloadConfig()).generate()
        outs = [q.name for q in queries]
        assert len(outs) == len(set(outs))

    def test_queries_actually_run(self, pigmix_dfs, dataset):
        server = PigServer(pigmix_dfs)
        for query in WorkloadGenerator(
            dataset, WorkloadConfig(n_queries=3)
        ).generate():
            result = server.run(query.source, name=query.name)
            assert result.outputs

    def test_high_repeat_probability_yields_overlap(self, dataset):
        queries = WorkloadGenerator(
            dataset,
            WorkloadConfig(n_queries=10, repeat_probability=1.0, seed=4),
        ).generate()
        # with p=1 every query after the first uses the same parameter
        actions = {q.name.rsplit("_a", 1)[1] for q in queries}
        assert len(actions) == 1


class TestAblationHarnesses:
    def test_ordering_ablation_shows_penalty(self):
        result = run_ordering_ablation(pigmix_config=CFG, queries=("L6",))
        row = result.rows[0]
        assert row["reuse_unordered_min"] > row["reuse_ordered_min"]

    def test_optimizer_ablation_shows_canonicalization(self):
        result = run_optimizer_ablation(pigmix_config=CFG)
        by_mode = {r["mode"]: r for r in result.rows}
        assert by_mode["optimized"]["rewrites_on_spelling_b"] > 0
        assert by_mode["unoptimized"]["rewrites_on_spelling_b"] == 0

    def test_workload_stream_restore_wins_cumulatively(self):
        result = run_workload_stream(
            pigmix_config=CFG,
            workload_config=WorkloadConfig(n_queries=6, seed=3),
        )
        total = [r for r in result.rows if r["query"] == "TOTAL"][0]
        assert total["cum_restore_min"] < total["cum_plain_min"]

    def test_workload_stream_per_query_rows(self):
        result = run_workload_stream(
            pigmix_config=CFG,
            workload_config=WorkloadConfig(n_queries=4, seed=3),
        )
        assert len(result.rows) == 5  # 4 queries + TOTAL
