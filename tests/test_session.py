"""ReStoreSession facade: wiring invariants, builder, config paths."""

import pytest

from repro import ReStoreSession
from repro.core.eviction import TimeWindowEviction
from repro.core.manager import ReStoreConfig
from repro.core.selector import KeepAllSelector, RuleBasedSelector
from repro.costmodel.model import CostModel, estimate_standalone_time
from repro.dfs.filesystem import DistributedFileSystem
from repro.pig.engine import PigServer

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"

Q1 = f"""
A = load 'data/page_views' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load 'data/users' as ({USERS});
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'q1_out';
"""

Q2 = Q1.replace("store C into 'q1_out';", """
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'q2_out';
""")


class TestQuickstart:
    def test_readme_quickstart_end_to_end(self):
        with ReStoreSession() as session:
            session.write_file("data/users", "alice\t1\nbob\t2\n")
            result = session.run(
                "A = load 'data/users' as (name, uid:int);"
                "B = filter A by uid > 1; store B into 'out';"
            )
            assert result.outputs["out"] == [("bob", 2)]

    def test_reuse_flow_through_session(self, small_data):
        session = ReStoreSession(dfs=small_data)
        session.run(Q1)
        result = session.run(Q2)
        assert sorted(result.outputs["q2_out"]) == [
            ("alice", 4.5), ("bob", 4.0), ("carol", 8.0),
        ]
        assert session.manager.elimination_count == 1
        assert len(session.results) == 2


class TestSharedCostModel:
    def test_manager_and_simulator_share_one_instance(self):
        session = ReStoreSession()
        assert session.manager.cost_model is session.cost_model
        assert session.server.cost_model is session.cost_model
        assert session.server.runner.cost_model is session.cost_model

    def test_selector_resolved_with_shared_model(self):
        session = (ReStoreSession.builder().selector("rules").build())
        assert isinstance(session.manager.selector, RuleBasedSelector)
        assert session.manager.selector.cost_model is session.cost_model

    def test_standalone_estimates_agree_with_simulator_model(self):
        """Regression: ReStoreManager(dfs) used to default to a
        cluster-less CostModel while PigServer built its own with the
        cluster attached, so the manager's estimate_standalone_time
        could silently disagree with the simulator's."""
        session = ReStoreSession()
        manager_estimate = estimate_standalone_time(
            session.manager.cost_model,
            input_bytes=10_000_000, output_bytes=1_000_000, records=5_000,
        )
        simulator_estimate = estimate_standalone_time(
            session.server.runner.cost_model,
            input_bytes=10_000_000, output_bytes=1_000_000, records=5_000,
        )
        assert manager_estimate == simulator_estimate

    def test_explicit_cost_model_propagates_everywhere(self):
        model = CostModel(data_scale=123.0)
        session = ReStoreSession(cost_model=model)
        assert session.manager.cost_model is model
        assert session.server.cost_model is model


class TestBuilder:
    def test_plugin_names_resolve(self, small_data):
        session = (
            ReStoreSession.builder()
            .dfs(small_data)
            .heuristic("conservative")
            .selector("keep-all")
            .evict("time-window:3", "input-modified")
            .build()
        )
        assert session.manager.enumerator.heuristic.name == "conservative"
        assert isinstance(session.manager.selector, KeepAllSelector)
        policies = session.manager.eviction_policies
        assert [p.name for p in policies] == ["time-window", "input-modified"]
        assert policies[0].window == 3

    def test_unknown_heuristic_lists_registry(self):
        with pytest.raises(ValueError, match="aggressive"):
            ReStoreSession.builder().heuristic("bogus").build()

    def test_unknown_eviction_spec(self):
        with pytest.raises(ValueError, match="time-window"):
            ReStoreSession.builder().evict("bogus:9").build()

    def test_eviction_instances_accepted(self):
        policy = TimeWindowEviction(window=2)
        session = ReStoreSession.builder().evict(policy).build()
        assert session.manager.eviction_policies == [policy]

    def test_without_restore(self):
        session = ReStoreSession.builder().without_restore().build()
        assert session.manager is None
        assert session.repository is None
        assert not session.restore_enabled
        # the inert bus still accepts subscriptions
        assert session.events.collect() == []

    def test_config_and_setters_are_exclusive(self):
        builder = ReStoreSession.builder().config(ReStoreConfig())
        with pytest.raises(ValueError):
            builder.heuristic("never").build()


class TestFromDict:
    def test_full_config(self):
        session = ReStoreSession.from_dict({
            "datanodes": 3,
            "restore": {
                "heuristic": "never",
                "selector": "rules",
                "eviction_policies": ["time-window:5"],
                "register_whole_jobs": "temporary-only",
            },
        })
        assert session.manager.enumerator.heuristic.name == "never"
        assert session.config.register_whole_jobs == "temporary-only"
        assert session.manager.eviction_policies[0].window == 5

    def test_restore_false_disables(self):
        session = ReStoreSession.from_dict({"restore": False})
        assert session.manager is None

    def test_unknown_session_key_rejected(self):
        with pytest.raises(ValueError, match="unknown session keys"):
            ReStoreSession.from_dict({"datanode": 3})

    def test_unknown_restore_key_rejected(self):
        with pytest.raises(ValueError, match="unknown ReStoreConfig keys"):
            ReStoreSession.from_dict({"restore": {"heuristics": "ha"}})

    def test_unknown_plugin_name_fails_at_load(self):
        with pytest.raises(ValueError, match="unknown selector"):
            ReStoreConfig.from_dict({"selector": "bogus"})


class TestLifecycle:
    def test_context_manager_closes(self):
        with ReStoreSession() as session:
            pass
        with pytest.raises(RuntimeError, match="closed"):
            session.run("A = load 'x' as (a); store A into 'o';")

    def test_closed_session_still_inspectable(self, small_data):
        with ReStoreSession(dfs=small_data) as session:
            session.run(Q1)
        assert len(session.repository) > 0  # state survives close
        assert "closed" in repr(session)

    def test_report_mentions_repository(self, small_data):
        session = ReStoreSession(dfs=small_data)
        session.run(Q1)
        text = session.report()
        assert "repository" in text
        assert "1 run(s)" in text

    def test_adopting_prebuilt_manager(self, small_data):
        from repro.core.manager import ReStoreManager

        manager = ReStoreManager(small_data)
        session = ReStoreSession(dfs=small_data, manager=manager)
        assert session.manager is manager
        assert session.cost_model is manager.cost_model
        session.run(Q1)
        assert len(manager.repository) > 0

    def test_adopted_manager_supplies_the_dfs(self, small_data):
        from repro.core.manager import ReStoreManager

        manager = ReStoreManager(small_data)
        session = ReStoreSession(manager=manager)  # no dfs argument
        assert session.dfs is small_data
        result = session.run(Q1)  # data is visible: same filesystem
        assert result.outputs["q1_out"]

    def test_adoption_rejects_conflicting_arguments(self, small_data):
        from repro.core.manager import ReStoreManager

        manager = ReStoreManager(small_data)
        with pytest.raises(ValueError, match="share one filesystem"):
            ReStoreSession(dfs=DistributedFileSystem(2), manager=manager)
        with pytest.raises(ValueError, match="not both"):
            ReStoreSession(manager=manager, config=ReStoreConfig())


class TestScriptIdScoping:
    """Script ids come from the DFS: deterministic per filesystem,
    collision-free between servers sharing one."""

    def test_fresh_dfs_restarts_numbering(self):
        src = "A = load 'x' as (a, b); store A into 'o';"
        assert PigServer(DistributedFileSystem(2)).compile(src).name == "script_1"
        # another process-lifetime server on a NEW dfs starts over
        assert PigServer(DistributedFileSystem(2)).compile(src).name == "script_1"

    def test_servers_sharing_a_dfs_never_collide(self):
        src = "A = load 'x' as (a, b); store A into 'o';"
        dfs = DistributedFileSystem(2)
        first = PigServer(dfs)
        assert first.compile(src).name == "script_1"
        assert first.compile(src).name == "script_2"
        second = PigServer(dfs)
        assert second.compile(src).name == "script_3"

    def test_temp_prefix_deterministic_per_session(self, small_data):
        workflow = PigServer(small_data).compile(Q2)
        temp_paths = [j.output_path for j in workflow.jobs if j.temporary]
        assert temp_paths
        assert all(p.startswith("tmp/s1/") for p in temp_paths)

    def test_fresh_server_per_run_does_not_corrupt_repository(self, small_data):
        """Regression: when every run builds a fresh server over a
        shared DFS + manager (the experiment-sandbox pattern), a new
        query's temp output must not overwrite a stored temp file the
        repository still points at — that silently corrupts later
        reuse."""
        from repro.core.manager import ReStoreManager

        # isolated ground truth for a MAX variant of Q2
        truth_server = PigServer(small_data)
        variant = Q2.replace("SUM", "MAX").replace("q2_out", "truth_out")
        truth = truth_server.run(variant)

        manager = ReStoreManager(small_data)
        ReStoreSession(manager=manager).run(Q2)
        # unrelated query from a *fresh* server: must not reuse Q2's
        # temp numbering
        other = f"""
        A = load 'data/page_views' as ({PV});
        U = load 'data/users' as ({USERS});
        J = join A by user, U by name;
        G = group J by $1;
        S = foreach G generate group, SUM(J.est_revenue);
        store S into 'other_out';
        """
        ReStoreSession(manager=manager).run(other)
        reused = ReStoreSession(manager=manager).run(
            variant.replace("truth_out", "reuse_out")
        )
        assert sorted(reused.outputs["reuse_out"]) == sorted(
            truth.outputs["truth_out"]
        )
