"""Unit tests for sub-job heuristics (paper §4)."""

import pytest

from repro.core.heuristics import (
    AggressiveHeuristic,
    ConservativeHeuristic,
    NeverMaterialize,
    NoHeuristic,
    classify_operator,
    heuristic_by_name,
)

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
USERS = "name, phone, address, city"


def plan_for(server, source):
    workflow = server.compile(source)
    return workflow.jobs[0].plan


@pytest.fixture
def l3ish_plan(server):
    return plan_for(server, f"""
        A = load 'data/page_views' as ({PV});
        B = foreach A generate user, est_revenue;
        alpha = load 'data/users' as ({USERS});
        beta = foreach alpha generate name;
        C = join beta by name, B by user;
        store C into 'out';
    """)


class TestClassification:
    def test_projection_classified(self, l3ish_plan):
        kinds = {classify_operator(op, l3ish_plan) for op in l3ish_plan}
        assert "project" in kinds

    def test_join_foreach_classified(self, l3ish_plan):
        from repro.pig.physical.operators import POPackage

        package = [op for op in l3ish_plan if isinstance(op, POPackage)][0]
        flatten = l3ish_plan.successors(package)[0]
        assert classify_operator(flatten, l3ish_plan) == "join"

    def test_structural_ops(self, l3ish_plan):
        from repro.pig.physical.operators import POLoad, POStore

        for op in l3ish_plan:
            if isinstance(op, (POLoad, POStore)):
                assert classify_operator(op, l3ish_plan) == "structural"

    def test_filter_classified(self, server):
        plan = plan_for(server, f"""
            A = load 'data/page_views' as ({PV});
            B = filter A by est_revenue > 1.0;
            store B into 'out';
        """)
        kinds = [classify_operator(op, plan) for op in plan]
        assert "filter" in kinds

    def test_group_classified(self, server):
        plan = plan_for(server, f"""
            A = load 'data/page_views' as ({PV});
            D = group A by user;
            E = foreach D generate group, COUNT(A);
            store E into 'out';
        """)
        kinds = [classify_operator(op, plan) for op in plan]
        assert "group" in kinds
        assert "aggregate" in kinds

    def test_group_all_classified_separately(self, server):
        plan = plan_for(server, f"""
            A = load 'data/page_views' as ({PV});
            C = group A all;
            D = foreach C generate COUNT(A);
            store D into 'out';
        """)
        kinds = [classify_operator(op, plan) for op in plan]
        assert "group-all" in kinds
        assert "group" not in kinds

    def test_cogroup_classified(self, server):
        plan = plan_for(server, f"""
            A = load 'data/page_views' as ({PV});
            alpha = load 'data/users' as ({USERS});
            C = cogroup A by user, alpha by name;
            D = foreach C generate group, COUNT(A);
            store D into 'out';
        """)
        kinds = [classify_operator(op, plan) for op in plan]
        assert "cogroup" in kinds


class TestHeuristicSelection:
    def _kinds_selected(self, heuristic, plan):
        return {
            classify_operator(op, plan)
            for op in plan
            if heuristic.should_materialize(op, plan)
        }

    def test_conservative_project_filter_only(self, l3ish_plan):
        selected = self._kinds_selected(ConservativeHeuristic(), l3ish_plan)
        assert selected <= {"project", "filter"}
        assert "project" in selected

    def test_aggressive_adds_join(self, l3ish_plan):
        selected = self._kinds_selected(AggressiveHeuristic(), l3ish_plan)
        assert "join" in selected
        assert "project" in selected

    def test_aggressive_excludes_group_all(self, server):
        plan = plan_for(server, f"""
            A = load 'data/page_views' as ({PV});
            C = group A all;
            D = foreach C generate COUNT(A);
            store D into 'out';
        """)
        selected = self._kinds_selected(AggressiveHeuristic(), plan)
        assert "group-all" not in selected

    def test_no_heuristic_includes_everything_materializable(self, l3ish_plan):
        selected = self._kinds_selected(NoHeuristic(), l3ish_plan)
        assert "project" in selected and "join" in selected

    def test_no_heuristic_skips_structural(self, l3ish_plan):
        heuristic = NoHeuristic()
        from repro.pig.physical.operators import (
            POGlobalRearrange,
            POLoad,
            POLocalRearrange,
            POStore,
        )

        for op in l3ish_plan:
            if isinstance(
                op, (POLoad, POStore, POLocalRearrange, POGlobalRearrange)
            ):
                assert not heuristic.should_materialize(op, l3ish_plan)

    def test_never(self, l3ish_plan):
        heuristic = NeverMaterialize()
        assert not any(
            heuristic.should_materialize(op, l3ish_plan) for op in l3ish_plan
        )


class TestLookup:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("conservative", ConservativeHeuristic),
            ("HC", ConservativeHeuristic),
            ("aggressive", AggressiveHeuristic),
            ("ha", AggressiveHeuristic),
            ("no-heuristic", NoHeuristic),
            ("NH", NoHeuristic),
            ("never", NeverMaterialize),
        ],
    )
    def test_by_name(self, name, cls):
        assert isinstance(heuristic_by_name(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            heuristic_by_name("bogus")
